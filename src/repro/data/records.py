"""Record, certificate, and dataset containers.

A ``Record`` is a single occurrence of a person on one certificate (one
role).  A ``Certificate`` groups the records extracted from it and carries
the intra-certificate relationships (mother-of, father-of, spouse-of) that
the dependency graph turns into relationship edges between relational
nodes.  A ``Dataset`` bundles records, certificates, and ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.data.roles import (
    CertificateType,
    Role,
    birth_year_range,
    role_gender,
)

__all__ = ["Record", "Certificate", "Dataset", "concat_datasets"]

# Attributes every record may carry.  ``person_id`` is deliberately *not*
# among them: ground truth lives on the Record object, outside the QID
# payload the resolver sees.
QID_ATTRIBUTES = (
    "first_name",
    "surname",
    "gender",
    "event_year",
    "birth_year",
    "age",
    "address",
    "parish",
    "occupation",
    "cause_of_death",
)


@dataclass
class Record:
    """One person-role occurrence on one certificate.

    ``attributes`` holds the QID values the resolver is allowed to use;
    missing values are absent keys (or empty strings after CSV round
    trips).  ``person_id`` is ground truth used only for evaluation and is
    never consulted by any linkage algorithm.
    """

    record_id: int
    cert_id: int
    role: Role
    attributes: dict[str, str]
    person_id: int

    def get(self, attribute: str) -> str | None:
        """QID value for ``attribute``, or ``None`` when missing/blank."""
        value = self.attributes.get(attribute)
        if value is None or value == "":
            return None
        return value

    @property
    def event_year(self) -> int:
        """Registration year of the record's certificate."""
        value = self.get("event_year")
        if value is None:
            raise ValueError(f"record {self.record_id} has no event_year")
        return int(value)

    @property
    def gender(self) -> str | None:
        """Gender implied by the role, else the recorded value."""
        return role_gender(self.role, self.get("gender"))

    @property
    def age(self) -> int | None:
        """Recorded age at the event, when present."""
        value = self.get("age")
        return int(value) if value is not None else None

    def birth_range(self) -> tuple[int, int]:
        """Plausible (min, max) birth year implied by role + certificate."""
        return birth_year_range(self.role, self.event_year, self.age)

    def __hash__(self) -> int:
        return hash(self.record_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Record) and other.record_id == self.record_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        name = f"{self.get('first_name') or '?'} {self.get('surname') or '?'}"
        return (
            f"Record({self.record_id}, {self.role.value}, {name!r}, "
            f"y={self.attributes.get('event_year')})"
        )


@dataclass
class Certificate:
    """One statutory certificate (or census household) and its records.

    ``roles`` maps each singular role present to the record id of that
    occurrence.  Census households additionally carry any number of
    children (role Cc) in ``children`` and other members (role Co —
    lodgers, servants, relatives) in ``others``.  Intra-certificate
    relationships are derived from the role structure (e.g. on a birth
    certificate Bm is *motherOf* Bb).
    """

    cert_id: int
    cert_type: CertificateType
    year: int
    parish: str
    roles: dict[Role, int] = field(default_factory=dict)
    children: list[int] = field(default_factory=list)
    others: list[int] = field(default_factory=list)

    def record_id(self, role: Role) -> int | None:
        """Record id of singular ``role`` on this certificate, if present."""
        return self.roles.get(role)

    def member_record_ids(self) -> list[int]:
        """All record ids on this certificate/household."""
        return list(self.roles.values()) + self.children + self.others

    def relationships(self) -> list[tuple[int, str, int]]:
        """Intra-certificate relationship triples ``(rid_a, rel, rid_b)``.

        Relations follow the paper's Figure 3: ``Mof``/``Fof`` point from
        parent to child, ``Sof`` links spouses symmetrically (emitted once).
        Census households relate the head and wife as spouses and both as
        parents of the household's children.

        Memoised: certificate role structure is immutable after loading,
        and graph construction asks for each certificate's triples once
        per certificate-pair group it appears in.
        """
        cached = self.__dict__.get("_relationships")
        if cached is not None:
            return cached
        triples: list[tuple[int, str, int]] = []

        def rel(role_a: Role, relation: str, role_b: Role) -> None:
            rid_a, rid_b = self.roles.get(role_a), self.roles.get(role_b)
            if rid_a is not None and rid_b is not None:
                triples.append((rid_a, relation, rid_b))

        if self.cert_type is CertificateType.BIRTH:
            rel(Role.BM, "Mof", Role.BB)
            rel(Role.BF, "Fof", Role.BB)
            rel(Role.BM, "Sof", Role.BF)
        elif self.cert_type is CertificateType.DEATH:
            rel(Role.DM, "Mof", Role.DD)
            rel(Role.DF, "Fof", Role.DD)
            rel(Role.DM, "Sof", Role.DF)
            rel(Role.DS, "Sof", Role.DD)
        elif self.cert_type is CertificateType.MARRIAGE:
            rel(Role.MB, "Sof", Role.MG)
        elif self.cert_type is CertificateType.CENSUS:
            rel(Role.CH, "Sof", Role.CW)
            head = self.roles.get(Role.CH)
            wife = self.roles.get(Role.CW)
            for child in self.children:
                if head is not None:
                    triples.append((head, "Fof", child))
                if wife is not None:
                    triples.append((wife, "Mof", child))
        self.__dict__["_relationships"] = triples
        return triples


class Dataset:
    """Records + certificates + complete ground truth for one experiment.

    Ground truth is the ``person_id`` on each record: two records are a
    true match iff they share it.  The evaluation helpers expose the truth
    restricted to a role pair in the paper's notation (e.g. ``"Bp-Bp"``).
    """

    def __init__(
        self,
        name: str,
        records: Iterable[Record],
        certificates: Iterable[Certificate],
    ) -> None:
        self.name = name
        self.records: dict[int, Record] = {r.record_id: r for r in records}
        self.certificates: dict[int, Certificate] = {
            c.cert_id: c for c in certificates
        }
        self._validate()

    def _validate(self) -> None:
        for cert in self.certificates.values():
            members = [(role, rid) for role, rid in cert.roles.items()]
            members += [(Role.CC, rid) for rid in cert.children]
            members += [(Role.CO, rid) for rid in cert.others]
            for role, rid in members:
                record = self.records.get(rid)
                if record is None:
                    raise ValueError(
                        f"certificate {cert.cert_id} references missing record {rid}"
                    )
                if record.role is not role or record.cert_id != cert.cert_id:
                    raise ValueError(
                        f"record {rid} inconsistent with certificate {cert.cert_id}"
                    )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self.records.values())

    def records_with_role(self, roles: Iterable[Role]) -> list[Record]:
        """All records whose role is in ``roles``."""
        role_set = set(roles)
        return [r for r in self.records.values() if r.role in role_set]

    def record(self, record_id: int) -> Record:
        """Record by id (KeyError if absent)."""
        return self.records[record_id]

    def certificate_of(self, record: Record) -> Certificate:
        """The certificate a record was extracted from."""
        return self.certificates[record.cert_id]

    def n_people(self) -> int:
        """Number of distinct ground-truth persons appearing in records."""
        return len({r.person_id for r in self.records.values()})

    def true_match_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        """Ground-truth matching record-id pairs for ``role_pair``.

        ``role_pair`` uses the paper's notation ``"Bp-Bp"`` / ``"Bp-Dp"`` /
        ``"Bb-Dd"``: the two sides name role groups from
        ``repro.data.roles.PARENT_ROLE_GROUPS``.  A pair (sorted record
        ids) is a true match when both records refer to the same person
        and the two records' roles fall one on each side.
        """
        from repro.data.roles import PARENT_ROLE_GROUPS

        left_name, right_name = role_pair.split("-")
        left = PARENT_ROLE_GROUPS[left_name]
        right = PARENT_ROLE_GROUPS[right_name]
        by_person: dict[int, list[Record]] = {}
        for record in self.records.values():
            if record.role in left or record.role in right:
                by_person.setdefault(record.person_id, []).append(record)
        pairs: set[tuple[int, int]] = set()
        for group in by_person.values():
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if (a.role in left and b.role in right) or (
                        a.role in right and b.role in left
                    ):
                        if a.record_id != b.record_id:
                            lo, hi = sorted((a.record_id, b.record_id))
                            pairs.add((lo, hi))
        return pairs

    def content_fingerprint(self) -> str:
        """SHA-256 over the dataset's canonical record/certificate content.

        Stable across process runs and independent of insertion order;
        ``repro.store`` uses it to bind a snapshot to the exact dataset
        it was resolved from.  Empty attribute values are treated as
        missing (as :meth:`Record.get` does), so a CSV round trip — which
        drops empty cells — preserves the fingerprint.
        """
        import hashlib
        import json

        records = [
            {
                "record_id": r.record_id,
                "cert_id": r.cert_id,
                "role": r.role.value,
                "person_id": r.person_id,
                "attributes": {
                    k: v for k, v in sorted(r.attributes.items()) if v != ""
                },
            }
            for r in sorted(self.records.values(), key=lambda r: r.record_id)
        ]
        certs = [
            {
                "cert_id": c.cert_id,
                "cert_type": c.cert_type.value,
                "year": c.year,
                "parish": c.parish,
                "roles": {role.value: rid for role, rid in sorted(
                    c.roles.items(), key=lambda item: item[0].value
                )},
                "children": list(c.children),
                "others": list(c.others),
            }
            for c in sorted(self.certificates.values(), key=lambda c: c.cert_id)
        ]
        payload = json.dumps(
            {"records": records, "certificates": certs},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> dict[str, int]:
        """Summary counts used by the dataset-characteristics benches."""
        by_type = {t: 0 for t in CertificateType}
        for cert in self.certificates.values():
            by_type[cert.cert_type] += 1
        return {
            "records": len(self.records),
            "certificates": len(self.certificates),
            "people": self.n_people(),
            "birth_certs": by_type[CertificateType.BIRTH],
            "death_certs": by_type[CertificateType.DEATH],
            "marriage_certs": by_type[CertificateType.MARRIAGE],
            "census_households": by_type[CertificateType.CENSUS],
        }


def concat_datasets(base: Dataset, delta: Dataset, name: str | None = None) -> Dataset:
    """Union of two disjoint datasets (incremental-ingest input).

    ``delta`` is a batch of *new* certificates arriving against an
    existing ``base``; record ids and certificate ids must not collide —
    the delta describes new material, not updates to existing records.
    Raises ``ValueError`` on any id collision.
    """
    record_overlap = set(base.records) & set(delta.records)
    if record_overlap:
        raise ValueError(
            f"delta reuses {len(record_overlap)} record id(s) of the base "
            f"dataset (e.g. {sorted(record_overlap)[:5]}); delta batches "
            "must carry fresh record ids"
        )
    cert_overlap = set(base.certificates) & set(delta.certificates)
    if cert_overlap:
        raise ValueError(
            f"delta reuses {len(cert_overlap)} certificate id(s) of the "
            f"base dataset (e.g. {sorted(cert_overlap)[:5]}); delta "
            "batches must carry fresh certificate ids"
        )
    return Dataset(
        name if name is not None else f"{base.name}+{delta.name}",
        list(base.records.values()) + list(delta.records.values()),
        list(base.certificates.values()) + list(delta.certificates.values()),
    )
