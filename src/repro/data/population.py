"""Agent-based demographic population simulator.

Simulates a closed-ish 19th-century Scottish population year by year —
marriages, births, deaths, migration, residential moves — and registers
each vital event as a certificate, exactly the record layout of the paper's
data (Section 2/3).  Every emitted record carries the true person id, so
the simulator yields *complete* ground truth where the real IOS/KIL data
only had partial expert links.

The simulator deliberately produces every ER challenge the paper
enumerates:

* **changing QID values** — women take their husband's surname at
  marriage; families move between addresses and parishes;
* **different roles over time** — one person appears as Bb, later Mb/Mg,
  Bm/Bf, possibly Dm/Df and Ds, and finally Dd;
* **ambiguity** — names are drawn from small Zipf-weighted pools, so a
  handful of names dominates (Figure 2's shape);
* **partial match groups** — siblings share surname, address, and parents;
* transcription noise and missing values are added afterwards by
  :class:`repro.data.corruption.Corruptor`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.data.names import (
    ADDRESSES_BY_PARISH,
    CAUSES_OF_DEATH_COMMON,
    CAUSES_OF_DEATH_RARE,
    FEMALE_FIRST_NAMES,
    MALE_FIRST_NAMES,
    OCCUPATIONS_FEMALE,
    OCCUPATIONS_MALE,
    PARISHES,
    SURNAMES,
    zipf_weights,
)
from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role
from repro.utils.rng import make_rng, spawn_rng

__all__ = ["PopulationConfig", "Person", "PopulationSimulator"]


@dataclass
class PopulationConfig:
    """Tunable parameters of the demographic simulation.

    Defaults approximate Isle-of-Skye registers 1861–1901: high infant
    mortality, large completed family sizes, little remarriage.  Scale the
    population with ``n_founder_couples``.
    """

    start_year: int = 1861
    end_year: int = 1901
    n_founder_couples: int = 120
    # Demography.
    annual_birth_prob: float = 0.33      # per eligible married couple
    min_birth_spacing_years: int = 2
    infant_mortality: float = 0.11       # death in first year of life
    child_mortality: float = 0.02        # ages 1-9, per year
    adult_mortality_base: float = 0.006  # per year at age 20, doubles /12y
    marriage_prob: float = 0.16          # per eligible single adult per year
    min_marriage_age: int = 18
    max_marriage_age: int = 50
    max_mother_age: int = 45
    move_prob: float = 0.045             # family changes address, per year
    parish_move_prob: float = 0.25       # given a move, it crosses parishes
    immigrant_couples_per_year: int = 1
    compound_name_prob: float = 0.14     # "mary ann"-style double names
    rare_cause_prob: float = 0.05        # death gets a rare (sensitive) cause
    # Which parishes this population lives in (a subset makes KIL urban-ish).
    parishes: tuple[str, ...] = tuple(PARISHES)
    # Decennial census snapshots (paper future work): every living person
    # is enumerated in exactly one household in each of these years.
    census_years: tuple[int, ...] = ()
    seed: int = 1

    def __post_init__(self) -> None:
        if self.end_year <= self.start_year:
            raise ValueError("end_year must be after start_year")
        if self.n_founder_couples <= 0:
            raise ValueError("need at least one founder couple")
        if not self.parishes:
            raise ValueError("need at least one parish")


@dataclass
class Person:
    """Ground-truth state of one simulated individual."""

    person_id: int
    gender: str                      # "m" | "f"
    first_name: str
    maiden_surname: str              # surname at birth, never changes
    surname: str                     # current surname (changes at marriage)
    birth_year: int
    parish: str
    address: str
    occupation: str | None = None
    mother_id: int | None = None
    father_id: int | None = None
    spouse_id: int | None = None
    alive: bool = True
    death_year: int | None = None
    # Year the person entered the simulated population: their birth year
    # for natives, the arrival year for immigrant founders.
    present_from: int = 0
    last_birth_year: int | None = None
    marriage_year: int | None = None
    children: list[int] = field(default_factory=list)

    def age_in(self, year: int) -> int:
        return year - self.birth_year


class PopulationSimulator:
    """Runs the demographic simulation and registers certificates.

    Usage::

        sim = PopulationSimulator(PopulationConfig(n_founder_couples=50))
        dataset = sim.run()
    """

    def __init__(self, config: PopulationConfig | None = None) -> None:
        self.config = config or PopulationConfig()
        root = make_rng(self.config.seed)
        self._rng_names = spawn_rng(root, "names")
        self._rng_demo = spawn_rng(root, "demography")
        self._rng_geo = spawn_rng(root, "geography")
        self.people: dict[int, Person] = {}
        self._person_ids = itertools.count(1)
        self._record_ids = itertools.count(1)
        self._cert_ids = itertools.count(1)
        self._records: list[Record] = []
        self._certificates: list[Certificate] = []
        self._female_weights = zipf_weights(len(FEMALE_FIRST_NAMES))
        self._male_weights = zipf_weights(len(MALE_FIRST_NAMES))
        self._surname_weights = zipf_weights(len(SURNAMES))

    # ------------------------------------------------------------------
    # Sampling helpers
    # ------------------------------------------------------------------

    def _sample_first_name(self, gender: str) -> str:
        if gender == "f":
            pool, weights = FEMALE_FIRST_NAMES, self._female_weights
        else:
            pool, weights = MALE_FIRST_NAMES, self._male_weights
        name = self._rng_names.choices(pool, weights=weights, k=1)[0]
        if self._rng_names.random() < self.config.compound_name_prob:
            second = self._rng_names.choices(pool, weights=weights, k=1)[0]
            if second != name.split()[0]:
                name = f"{name.split()[0]} {second.split()[0]}"
        return name

    def _sample_surname(self) -> str:
        return self._rng_names.choices(SURNAMES, weights=self._surname_weights, k=1)[0]

    def _sample_parish(self) -> str:
        return self._rng_geo.choice(self.config.parishes)

    def _sample_address(self, parish: str) -> str:
        stem = self._rng_geo.choice(ADDRESSES_BY_PARISH[parish])
        number = self._rng_geo.randint(1, 30)
        return f"{number} {stem}"

    def _sample_occupation(self, gender: str) -> str:
        pool = OCCUPATIONS_MALE if gender == "m" else OCCUPATIONS_FEMALE
        weights = zipf_weights(len(pool))
        return self._rng_names.choices(pool, weights=weights, k=1)[0]

    def _sample_cause_of_death(self, age: int) -> str:
        if self._rng_demo.random() < self.config.rare_cause_prob:
            return self._rng_demo.choice(CAUSES_OF_DEATH_RARE)
        # Young deaths skew to infectious causes (front of the list).
        pool = CAUSES_OF_DEATH_COMMON
        if age < 10:
            pool = pool[:12]
        weights = zipf_weights(len(pool), exponent=0.7)
        return self._rng_demo.choices(pool, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    # Person creation
    # ------------------------------------------------------------------

    def _new_person(
        self,
        gender: str,
        birth_year: int,
        parish: str,
        address: str,
        surname: str | None = None,
        mother_id: int | None = None,
        father_id: int | None = None,
    ) -> Person:
        person = Person(
            person_id=next(self._person_ids),
            gender=gender,
            first_name=self._sample_first_name(gender),
            maiden_surname=surname or self._sample_surname(),
            surname=surname or "",
            birth_year=birth_year,
            parish=parish,
            address=address,
            mother_id=mother_id,
            father_id=father_id,
        )
        if not person.surname:
            person.surname = person.maiden_surname
        person.present_from = birth_year
        self.people[person.person_id] = person
        return person

    def _add_founder_couple(self, year: int) -> tuple[Person, Person]:
        """Create an already-married adult couple (no parents on record)."""
        parish = self._sample_parish()
        address = self._sample_address(parish)
        husband_age = self._rng_demo.randint(21, 40)
        wife_age = husband_age - self._rng_demo.randint(0, 6)
        wife_age = max(18, wife_age)
        husband = self._new_person("m", year - husband_age, parish, address)
        wife = self._new_person("f", year - wife_age, parish, address)
        husband.occupation = self._sample_occupation("m")
        if self._rng_demo.random() < 0.35:
            wife.occupation = self._sample_occupation("f")
        husband.spouse_id = wife.person_id
        wife.spouse_id = husband.person_id
        wife.surname = husband.surname
        marriage_year = year - self._rng_demo.randint(0, min(husband_age - 20, 10))
        husband.marriage_year = wife.marriage_year = marriage_year
        husband.present_from = wife.present_from = year
        return husband, wife

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------

    def _emit(self, cert: Certificate, role: Role, person: Person,
              attrs: dict[str, str]) -> None:
        record = Record(
            record_id=next(self._record_ids),
            cert_id=cert.cert_id,
            role=role,
            attributes=attrs,
            person_id=person.person_id,
        )
        cert.roles[role] = record.record_id
        self._records.append(record)

    def _base_attrs(self, person: Person, year: int, parish: str) -> dict[str, str]:
        return {
            "first_name": person.first_name,
            "surname": person.surname,
            "gender": person.gender,
            "event_year": str(year),
            "parish": parish,
            "address": person.address,
        }

    def _register_birth(self, baby: Person, mother: Person, father: Person,
                        year: int) -> None:
        cert = Certificate(
            cert_id=next(self._cert_ids),
            cert_type=CertificateType.BIRTH,
            year=year,
            parish=mother.parish,
        )
        self._certificates.append(cert)
        self._emit(cert, Role.BB, baby, self._base_attrs(baby, year, cert.parish))
        mother_attrs = self._base_attrs(mother, year, cert.parish)
        if mother.occupation:
            mother_attrs["occupation"] = mother.occupation
        self._emit(cert, Role.BM, mother, mother_attrs)
        father_attrs = self._base_attrs(father, year, cert.parish)
        if father.occupation:
            father_attrs["occupation"] = father.occupation
        self._emit(cert, Role.BF, father, father_attrs)

    def _register_death(self, deceased: Person, year: int) -> None:
        cert = Certificate(
            cert_id=next(self._cert_ids),
            cert_type=CertificateType.DEATH,
            year=year,
            parish=deceased.parish,
        )
        self._certificates.append(cert)
        age = deceased.age_in(year)
        attrs = self._base_attrs(deceased, year, cert.parish)
        attrs["age"] = str(age)
        attrs["cause_of_death"] = self._sample_cause_of_death(age)
        if deceased.occupation:
            attrs["occupation"] = deceased.occupation
        self._emit(cert, Role.DD, deceased, attrs)
        mother = self.people.get(deceased.mother_id or -1)
        father = self.people.get(deceased.father_id or -1)
        if mother is not None:
            mattrs = self._base_attrs(mother, year, cert.parish)
            self._emit(cert, Role.DM, mother, mattrs)
        if father is not None:
            fattrs = self._base_attrs(father, year, cert.parish)
            if father.occupation:
                fattrs["occupation"] = father.occupation
            self._emit(cert, Role.DF, father, fattrs)
        spouse = self.people.get(deceased.spouse_id or -1)
        if spouse is not None:
            sattrs = self._base_attrs(spouse, year, cert.parish)
            self._emit(cert, Role.DS, spouse, sattrs)

    def _register_census(self, year: int) -> None:
        """Enumerate the living population into households.

        Household composition: a married couple with the husband as head
        and his wife and their unmarried co-resident children as members;
        unmarried adults and widowed persons head their own household
        (with their own unmarried children, if any).
        """
        placed: set[int] = set()

        def census_attrs(person: Person, parish: str) -> dict[str, str]:
            attrs = self._base_attrs(person, year, parish)
            attrs["age"] = str(person.age_in(year))
            if person.occupation and person.age_in(year) >= 14:
                attrs["occupation"] = person.occupation
            return attrs

        def household_children(head: Person) -> list[Person]:
            kids = []
            for child_id in head.children:
                child = self.people[child_id]
                if (
                    child.alive
                    and child.person_id not in placed
                    and child.spouse_id is None
                    and child.birth_year <= year
                    and child.age_in(year) < 26
                ):
                    kids.append(child)
            return kids

        def emit_household(head: Person, wife: Person | None) -> None:
            cert = Certificate(
                cert_id=next(self._cert_ids),
                cert_type=CertificateType.CENSUS,
                year=year,
                parish=head.parish,
            )
            self._certificates.append(cert)
            self._emit(cert, Role.CH, head, census_attrs(head, cert.parish))
            placed.add(head.person_id)
            if wife is not None:
                self._emit(cert, Role.CW, wife, census_attrs(wife, cert.parish))
                placed.add(wife.person_id)
            kids = household_children(head)
            if wife is not None:
                kids += [k for k in household_children(wife) if k not in kids]
            for child in sorted(kids, key=lambda p: p.birth_year):
                record = Record(
                    record_id=next(self._record_ids),
                    cert_id=cert.cert_id,
                    role=Role.CC,
                    attributes=census_attrs(child, cert.parish),
                    person_id=child.person_id,
                )
                cert.children.append(record.record_id)
                self._records.append(record)
                placed.add(child.person_id)

        # Married couples first (husband heads the household).
        for person in list(self.people.values()):
            if (
                person.alive
                and person.gender == "m"
                and person.spouse_id is not None
                and person.person_id not in placed
                and person.birth_year <= year
            ):
                spouse = self.people.get(person.spouse_id)
                wife = spouse if spouse is not None and spouse.alive else None
                if wife is not None and wife.person_id in placed:
                    wife = None
                emit_household(person, wife)
        # Everyone left who is an adult heads their own household; their
        # unmarried children (widows' children) join them.
        for person in list(self.people.values()):
            if (
                person.alive
                and person.person_id not in placed
                and person.birth_year <= year
                and person.age_in(year) >= 16
            ):
                emit_household(person, None)
        # Orphaned minors: enumerate as "other member" of a fresh
        # household headed by the first available adult in their parish
        # (simplified boarding-out), or alone if none exists.
        for person in list(self.people.values()):
            if (
                person.alive
                and person.person_id not in placed
                and person.birth_year <= year
            ):
                cert = Certificate(
                    cert_id=next(self._cert_ids),
                    cert_type=CertificateType.CENSUS,
                    year=year,
                    parish=person.parish,
                )
                self._certificates.append(cert)
                record = Record(
                    record_id=next(self._record_ids),
                    cert_id=cert.cert_id,
                    role=Role.CO,
                    attributes=census_attrs(person, cert.parish),
                    person_id=person.person_id,
                )
                cert.others.append(record.record_id)
                self._records.append(record)
                placed.add(person.person_id)

    def _register_marriage(self, groom: Person, bride: Person, year: int) -> None:
        cert = Certificate(
            cert_id=next(self._cert_ids),
            cert_type=CertificateType.MARRIAGE,
            year=year,
            parish=bride.parish,
        )
        self._certificates.append(cert)
        battrs = self._base_attrs(bride, year, cert.parish)
        battrs["age"] = str(bride.age_in(year))
        self._emit(cert, Role.MB, bride, battrs)
        gattrs = self._base_attrs(groom, year, cert.parish)
        gattrs["age"] = str(groom.age_in(year))
        if groom.occupation:
            gattrs["occupation"] = groom.occupation
        self._emit(cert, Role.MG, groom, gattrs)

    # ------------------------------------------------------------------
    # Yearly dynamics
    # ------------------------------------------------------------------

    def _mortality(self, person: Person, year: int) -> float:
        age = person.age_in(year)
        if age <= 0:
            return self.config.infant_mortality
        if age < 10:
            return self.config.child_mortality
        if age < 20:
            return self.config.adult_mortality_base * 0.8
        # Gompertz-ish: hazard doubles every 12 years past 20.
        return min(0.9, self.config.adult_mortality_base * 2 ** ((age - 20) / 12.0))

    def _year_marriages(self, year: int) -> None:
        cfg = self.config
        singles_m = [
            p for p in self.people.values()
            if p.alive and p.gender == "m" and p.spouse_id is None
            and cfg.min_marriage_age <= p.age_in(year) <= cfg.max_marriage_age
        ]
        singles_f = [
            p for p in self.people.values()
            if p.alive and p.gender == "f" and p.spouse_id is None
            and cfg.min_marriage_age <= p.age_in(year) <= cfg.max_marriage_age
        ]
        self._rng_demo.shuffle(singles_m)
        self._rng_demo.shuffle(singles_f)
        for groom, bride in zip(singles_m, singles_f):
            if self._rng_demo.random() > cfg.marriage_prob:
                continue
            # Avoid sibling marriages in the synthetic truth.
            if (
                groom.mother_id is not None
                and groom.mother_id == bride.mother_id
            ):
                continue
            groom.spouse_id = bride.person_id
            bride.spouse_id = groom.person_id
            groom.marriage_year = bride.marriage_year = year
            if not groom.occupation:
                groom.occupation = self._sample_occupation("m")
            self._register_marriage(groom, bride, year)
            # Bride takes the groom's surname and joins his household.
            bride.surname = groom.surname
            bride.parish = groom.parish
            bride.address = groom.address

    def _year_births(self, year: int) -> None:
        cfg = self.config
        couples = [
            (p, self.people[p.spouse_id])
            for p in self.people.values()
            if p.alive and p.gender == "f" and p.spouse_id is not None
            and self.people[p.spouse_id].alive
        ]
        for mother, father in couples:
            age = mother.age_in(year)
            if age < 16 or age > cfg.max_mother_age:
                continue
            if (
                mother.last_birth_year is not None
                and year - mother.last_birth_year < cfg.min_birth_spacing_years
            ):
                continue
            if self._rng_demo.random() > cfg.annual_birth_prob:
                continue
            gender = "f" if self._rng_demo.random() < 0.49 else "m"
            baby = self._new_person(
                gender,
                year,
                mother.parish,
                mother.address,
                surname=father.surname,
                mother_id=mother.person_id,
                father_id=father.person_id,
            )
            mother.last_birth_year = year
            mother.children.append(baby.person_id)
            father.children.append(baby.person_id)
            self._register_birth(baby, mother, father, year)

    def _year_deaths(self, year: int) -> None:
        for person in list(self.people.values()):
            if not person.alive or person.birth_year > year:
                continue
            if self._rng_demo.random() < self._mortality(person, year):
                person.alive = False
                person.death_year = year
                self._register_death(person, year)
                spouse = self.people.get(person.spouse_id or -1)
                if spouse is not None:
                    spouse.spouse_id = None  # widowed; may remarry

    def _year_moves(self, year: int) -> None:
        cfg = self.config
        # Moves happen per (living adult male-headed or single) household;
        # approximate by iterating over living adults who head a household.
        for person in self.people.values():
            if not person.alive or person.age_in(year) < 18:
                continue
            if person.gender == "f" and person.spouse_id is not None:
                continue  # household handled via the husband
            if self._rng_demo.random() > cfg.move_prob:
                continue
            parish = person.parish
            if self._rng_demo.random() < cfg.parish_move_prob:
                parish = self._sample_parish()
            address = self._sample_address(parish)
            members = [person]
            spouse = self.people.get(person.spouse_id or -1)
            if spouse is not None and spouse.alive:
                members.append(spouse)
            for child_id in person.children:
                child = self.people[child_id]
                if child.alive and child.age_in(year) < 16 and child.spouse_id is None:
                    members.append(child)
            for member in members:
                member.parish = parish
                member.address = address

    def _year_immigration(self, year: int) -> None:
        for _ in range(self.config.immigrant_couples_per_year):
            self._add_founder_couple(year)

    # ------------------------------------------------------------------

    def run(self, name: str = "synthetic") -> Dataset:
        """Simulate the configured period and return the registered dataset."""
        cfg = self.config
        for _ in range(cfg.n_founder_couples):
            self._add_founder_couple(cfg.start_year)
        for year in range(cfg.start_year, cfg.end_year + 1):
            self._year_immigration(year)
            self._year_marriages(year)
            self._year_births(year)
            self._year_deaths(year)
            self._year_moves(year)
            if year in cfg.census_years:
                self._register_census(year)
        return Dataset(name, self._records, self._certificates)
