"""Certificate types, person roles, and role-pair linkage rules.

A person appears on certificates in different *roles* (paper Section 3):

=====  =============================  ======
Role   Meaning                        Gender
=====  =============================  ======
Bb     baby on a birth certificate    any
Bm     mother on a birth certificate  f
Bf     father on a birth certificate  m
Dd     deceased on a death cert.      any
Dm     mother of the deceased         f
Df     father of the deceased         m
Ds     spouse of the deceased         any
Mb     bride on a marriage cert.      f
Mg     groom on a marriage cert.      m
=====  =============================  ======

Two records can only refer to the same person if their roles are
*linkable*: genders must agree and the combination must be biologically
possible (``LINKABLE_ROLE_PAIRS``).  A person has exactly one birth and
one death, so Bb–Bb and Dd–Dd pairs are never linkable — this is the
paper's one-to-one *link constraint* applied structurally.

Each role also implies a range of plausible birth years given the
certificate's event year (``birth_year_range``); the paper's *temporal
constraints* (e.g. a mother is 15–55 years older than her baby) become
"the birth-year ranges of co-referent records must intersect".
"""

from __future__ import annotations

import enum

__all__ = [
    "CertificateType",
    "Role",
    "role_gender",
    "birth_year_range",
    "LINKABLE_ROLE_PAIRS",
    "PARENT_ROLE_GROUPS",
    "SINGLETON_ROLES",
]

# Biological bounds used by the temporal constraints (paper Section 4.2.2:
# a birth baby becomes a birth mother after at least 15 and at most ~55
# years; fatherhood extends to ~70; extreme recorded lifespan bounds the
# rest).
MIN_PARENT_AGE = 15
MAX_MOTHER_AGE = 55
MAX_FATHER_AGE = 70
MIN_MARRIAGE_AGE = 16
MAX_LIFESPAN = 105


class CertificateType(enum.Enum):
    """The three statutory certificate types held since 1855, plus the
    decennial census snapshot (the paper's future-work data source)."""

    BIRTH = "birth"
    DEATH = "death"
    MARRIAGE = "marriage"
    CENSUS = "census"


class Role(enum.Enum):
    """A person's role on one certificate (see module docstring)."""

    BB = "Bb"
    BM = "Bm"
    BF = "Bf"
    DD = "Dd"
    DM = "Dm"
    DF = "Df"
    DS = "Ds"
    MB = "Mb"
    MG = "Mg"
    # Census household roles (paper future work: incorporating census
    # data into the ER process).  A household lists a head, optionally a
    # wife, any number of children, and other members (lodgers, servants).
    CH = "Ch"
    CW = "Cw"
    CC = "Cc"
    CO = "Co"

    @property
    def certificate_type(self) -> CertificateType:
        """The certificate type this role appears on."""
        return _ROLE_CERT_TYPE[self]

    @property
    def is_parent(self) -> bool:
        """True for mother/father roles (Bm, Bf, Dm, Df)."""
        return self in {Role.BM, Role.BF, Role.DM, Role.DF}


_ROLE_CERT_TYPE = {
    Role.BB: CertificateType.BIRTH,
    Role.BM: CertificateType.BIRTH,
    Role.BF: CertificateType.BIRTH,
    Role.DD: CertificateType.DEATH,
    Role.DM: CertificateType.DEATH,
    Role.DF: CertificateType.DEATH,
    Role.DS: CertificateType.DEATH,
    Role.MB: CertificateType.MARRIAGE,
    Role.MG: CertificateType.MARRIAGE,
    Role.CH: CertificateType.CENSUS,
    Role.CW: CertificateType.CENSUS,
    Role.CC: CertificateType.CENSUS,
    Role.CO: CertificateType.CENSUS,
}

CENSUS_ROLES = frozenset({Role.CH, Role.CW, Role.CC, Role.CO})

# Fixed-gender roles; Bb, Dd, and Ds take the gender recorded on the
# certificate.
_ROLE_GENDER = {
    Role.BM: "f",
    Role.BF: "m",
    Role.DM: "f",
    Role.DF: "m",
    Role.MB: "f",
    Role.MG: "m",
    Role.CW: "f",
}

# Roles a single person can hold at most once across their life: one birth
# record, one death record (paper's one-to-one link constraints).
SINGLETON_ROLES = frozenset({Role.BB, Role.DD})


def role_gender(role: Role, recorded_gender: str | None = None) -> str | None:
    """Gender implied by ``role``, falling back to the recorded value.

    Returns ``"m"``, ``"f"``, or ``None`` when unknown.
    """
    implied = _ROLE_GENDER.get(role)
    if implied is not None:
        return implied
    return recorded_gender


def _linkable_pairs() -> frozenset[tuple[Role, Role]]:
    """Enumerate linkable role pairs as unordered (canonically sorted) pairs.

    A pair is linkable when one person could plausibly hold both roles:
    genders must be compatible and neither singleton role may repeat.
    Built explicitly rather than generated so domain exceptions are visible.
    """
    pairs = {
        # Parents recurring across certificates of their children.
        (Role.BM, Role.BM), (Role.BF, Role.BF),
        (Role.BM, Role.DM), (Role.BF, Role.DF),
        (Role.DM, Role.DM), (Role.DF, Role.DF),
        # A person's own life-course links.
        (Role.BB, Role.DD),                      # born, then died
        (Role.BB, Role.BM), (Role.BB, Role.BF),  # born, then became a parent
        (Role.BB, Role.DM), (Role.BB, Role.DF),  # born, then their child died
        (Role.BB, Role.MB), (Role.BB, Role.MG),  # born, then married
        (Role.BB, Role.DS),                      # born, then widowed
        # A parent's own death record, and spouse-of-deceased links.
        (Role.BM, Role.DD), (Role.BF, Role.DD),
        (Role.BM, Role.DS), (Role.BF, Role.DS),
        (Role.DM, Role.DD), (Role.DF, Role.DD),
        (Role.DM, Role.DS), (Role.DF, Role.DS),
        (Role.DS, Role.DS), (Role.DS, Role.DD),
        # Marriage roles joining the rest of the life course.
        (Role.MB, Role.BM), (Role.MG, Role.BF),
        (Role.MB, Role.DM), (Role.MG, Role.DF),
        (Role.MB, Role.DD), (Role.MG, Role.DD),
        (Role.MB, Role.DS), (Role.MG, Role.DS),
        (Role.MB, Role.MB), (Role.MG, Role.MG),  # remarriage
    }
    # Census roles: anyone alive at a census appears in some household
    # role, so every (census role, other role) combination is plausible —
    # gender and temporal filters do the real pruning.  Census roles also
    # link to each other (the same person across censuses).
    census = (Role.CH, Role.CW, Role.CC, Role.CO)
    for census_role in census:
        for other in Role:
            pairs.add((census_role, other))
    # ... except a census person can of course still have only one birth
    # and one death record; pairs with Bb/Dd stay (those are different
    # roles), nothing to remove here.
    canonical = set()
    for a, b in pairs:
        canonical.add(tuple(sorted((a, b), key=lambda r: r.value)))
    return frozenset(canonical)  # type: ignore[arg-type]


LINKABLE_ROLE_PAIRS: frozenset[tuple[Role, Role]] = _linkable_pairs()

# Role groups used by the evaluation's "role pair" notation: Bp = birth
# parents (Bm or Bf), Dp = death parents (Dm or Df).
PARENT_ROLE_GROUPS: dict[str, frozenset[Role]] = {
    "Bp": frozenset({Role.BM, Role.BF}),
    "Dp": frozenset({Role.DM, Role.DF}),
    "Bb": frozenset({Role.BB}),
    "Dd": frozenset({Role.DD}),
    "Cp": frozenset({Role.CH, Role.CW, Role.CC, Role.CO}),
}


def birth_year_range(
    role: Role,
    event_year: int,
    age_at_event: int | None = None,
) -> tuple[int, int]:
    """Plausible (min, max) birth year for a person in ``role`` on a
    certificate registered in ``event_year``.

    ``age_at_event`` narrows the range when the certificate records an age
    (deceased persons, brides, grooms).  These ranges encode the paper's
    temporal constraints: two records can co-refer only if their ranges
    intersect.

    >>> birth_year_range(Role.BB, 1870)
    (1870, 1870)
    >>> birth_year_range(Role.BM, 1870)
    (1815, 1855)
    """
    if age_at_event is not None:
        if age_at_event < 0:
            raise ValueError(f"age cannot be negative: {age_at_event}")
        # Recorded ages are rounded or mis-stated by a year either way.
        return (event_year - age_at_event - 1, event_year - age_at_event + 1)
    if role is Role.BB:
        return (event_year, event_year)
    if role is Role.BM:
        return (event_year - MAX_MOTHER_AGE, event_year - MIN_PARENT_AGE)
    if role is Role.BF:
        return (event_year - MAX_FATHER_AGE, event_year - MIN_PARENT_AGE)
    if role is Role.DD:
        return (event_year - MAX_LIFESPAN, event_year)
    if role is Role.DM:
        # Mother of a deceased person of unknown age: she was born at least
        # MIN_PARENT_AGE before the deceased, who died in event_year.
        return (event_year - MAX_LIFESPAN - MAX_MOTHER_AGE, event_year - MIN_PARENT_AGE)
    if role is Role.DF:
        return (event_year - MAX_LIFESPAN - MAX_FATHER_AGE, event_year - MIN_PARENT_AGE)
    if role is Role.DS:
        return (event_year - MAX_LIFESPAN, event_year - MIN_MARRIAGE_AGE)
    if role in (Role.MB, Role.MG):
        return (event_year - MAX_LIFESPAN, event_year - MIN_MARRIAGE_AGE)
    if role in (Role.CH, Role.CW):
        # Household heads and wives are adults.
        return (event_year - MAX_LIFESPAN, event_year - MIN_MARRIAGE_AGE)
    if role in (Role.CC, Role.CO):
        # A child or other member can be any age at the census.
        return (event_year - MAX_LIFESPAN, event_year)
    raise ValueError(f"unhandled role: {role}")
