"""Ingest hardening: schema validation and dirty-row quarantine.

Real vital-record transcriptions are dirty by construction (OCR noise,
missing values — paper Table 1), and a multi-hour offline run must not
abort on row 3 million.  This module checks a parsed batch of records
and certificates for structural and value-level problems:

- duplicate record/certificate ids,
- certificate role entries referencing missing records (dangling
  role→record references) or records whose role/cert disagrees,
- records referencing a certificate that does not exist,
- unparseable or out-of-range years and ages,
- invalid gender codes and out-of-range geo coordinates.

In **strict** mode the issues become one actionable
:class:`DatasetLoadError`.  In **quarantine** mode the offending
*certificates* (the atomic unit whose removal keeps the dataset
self-consistent) are dropped wholesale, and a :class:`QuarantineReport`
records every issue — writable as JSONL and mirrored into the metrics
registry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import Role
from repro.faults.taxonomy import DataFault
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DatasetLoadError",
    "QuarantineReport",
    "ValidationIssue",
    "clean_dataset",
    "format_issues",
    "validate_dataset_parts",
]

logger = get_logger("data.validate")

# Plausible registration/birth years for historical vital records; the
# reproduced datasets span 1861–1901, the guard band is generous.
YEAR_RANGE = (1500, 2100)
AGE_RANGE = (0, 130)
GENDERS = ("m", "f")


class DatasetLoadError(DataFault):
    """A dataset could not be loaded/validated; names file and row."""

    def __init__(
        self,
        message: str,
        path: str | Path | None = None,
        row: int | None = None,
        issues: Sequence["ValidationIssue"] = (),
    ) -> None:
        where = ""
        if path is not None:
            where = str(path)
        if row is not None:
            where += f", row {row}"
        super().__init__(f"{where}: {message}" if where else message)
        self.path = str(path) if path is not None else None
        self.row = row
        self.issues = list(issues)


@dataclass
class ValidationIssue:
    """One problem found in the source data."""

    code: str
    message: str
    file: str | None = None
    row: int | None = None
    record_id: int | None = None
    cert_id: int | None = None

    def as_dict(self) -> dict:
        return {k: v for k, v in self.__dict__.items() if v is not None}

    def __str__(self) -> str:
        where = ", ".join(
            part
            for part in (
                self.file,
                f"row {self.row}" if self.row is not None else None,
                f"record {self.record_id}" if self.record_id is not None else None,
                f"cert {self.cert_id}" if self.cert_id is not None else None,
            )
            if part
        )
        return f"[{self.code}] {self.message}" + (f" ({where})" if where else "")


@dataclass
class QuarantineReport:
    """Everything quarantined during one load, and why."""

    issues: list[ValidationIssue] = field(default_factory=list)
    certificates_dropped: int = 0
    records_dropped: int = 0

    def counts(self) -> dict[str, int]:
        """Issue counts keyed by issue code (sorted for stable output)."""
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.code] = counts.get(issue.code, 0) + 1
        return dict(sorted(counts.items()))

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON object per issue, plus a trailing summary line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as handle:
            for issue in self.issues:
                handle.write(json.dumps(issue.as_dict(), sort_keys=True) + "\n")
            handle.write(
                json.dumps(
                    {
                        "summary": self.counts(),
                        "certificates_dropped": self.certificates_dropped,
                        "records_dropped": self.records_dropped,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        return path

    def to_metrics(self, metrics: MetricsRegistry | None) -> None:
        if metrics is None:
            return
        metrics.inc("data.quarantine.issues", len(self.issues))
        metrics.inc("data.quarantine.certificates_dropped", self.certificates_dropped)
        metrics.inc("data.quarantine.records_dropped", self.records_dropped)
        for code, count in self.counts().items():
            metrics.inc(f"data.quarantine.{code}", count)

    def summary(self) -> str:
        parts = ", ".join(f"{code}={n}" for code, n in self.counts().items())
        return (
            f"quarantined {self.certificates_dropped} certificate(s) / "
            f"{self.records_dropped} record(s)"
            + (f" [{parts}]" if parts else "")
        )


def _int_or_none(value: str | None) -> int | None:
    if value in (None, ""):
        return None
    return int(value)


def _check_year(
    issues: list[ValidationIssue],
    record: Record,
    attribute: str,
    source: str | None,
) -> None:
    raw = record.attributes.get(attribute)
    try:
        year = _int_or_none(raw)
    except (TypeError, ValueError):
        issues.append(
            ValidationIssue(
                "unparseable_year",
                f"{attribute} {raw!r} is not a year",
                file=source,
                record_id=record.record_id,
                cert_id=record.cert_id,
            )
        )
        return
    if year is not None and not YEAR_RANGE[0] <= year <= YEAR_RANGE[1]:
        issues.append(
            ValidationIssue(
                "year_out_of_range",
                f"{attribute} {year} outside {YEAR_RANGE}",
                file=source,
                record_id=record.record_id,
                cert_id=record.cert_id,
            )
        )


def validate_dataset_parts(
    records: Iterable[Record],
    certificates: Iterable[Certificate],
    source: str | None = None,
) -> list[ValidationIssue]:
    """All structural and value-level issues in a parsed batch.

    Works on plain lists — *before* ``Dataset`` construction, whose own
    ``_validate`` raises on the first dangling reference.
    """
    records = list(records)
    certificates = list(certificates)
    issues: list[ValidationIssue] = []

    by_rid: dict[int, Record] = {}
    for record in records:
        if record.record_id in by_rid:
            issues.append(
                ValidationIssue(
                    "duplicate_record_id",
                    f"record id {record.record_id} appears more than once",
                    file=source,
                    record_id=record.record_id,
                    cert_id=record.cert_id,
                )
            )
        by_rid[record.record_id] = record
    by_cid: dict[int, Certificate] = {}
    for cert in certificates:
        if cert.cert_id in by_cid:
            issues.append(
                ValidationIssue(
                    "duplicate_cert_id",
                    f"certificate id {cert.cert_id} appears more than once",
                    file=source,
                    cert_id=cert.cert_id,
                )
            )
        by_cid[cert.cert_id] = cert

    # Certificate → record references (the dependency graph is built from
    # these; a dangling one crashes relationship extraction much later).
    for cert in certificates:
        members = [(role, rid) for role, rid in cert.roles.items()]
        members += [(Role.CC, rid) for rid in cert.children]
        members += [(Role.CO, rid) for rid in cert.others]
        for role, rid in members:
            record = by_rid.get(rid)
            if record is None:
                issues.append(
                    ValidationIssue(
                        "dangling_reference",
                        f"certificate {cert.cert_id} role {role.value} "
                        f"references missing record {rid}",
                        file=source,
                        cert_id=cert.cert_id,
                    )
                )
            elif record.role is not role or record.cert_id != cert.cert_id:
                issues.append(
                    ValidationIssue(
                        "role_mismatch",
                        f"record {rid} (role {record.role.value}, cert "
                        f"{record.cert_id}) inconsistent with certificate "
                        f"{cert.cert_id} role {role.value}",
                        file=source,
                        record_id=rid,
                        cert_id=cert.cert_id,
                    )
                )
        if not YEAR_RANGE[0] <= cert.year <= YEAR_RANGE[1]:
            issues.append(
                ValidationIssue(
                    "year_out_of_range",
                    f"certificate year {cert.year} outside {YEAR_RANGE}",
                    file=source,
                    cert_id=cert.cert_id,
                )
            )

    for record in records:
        if record.cert_id not in by_cid:
            issues.append(
                ValidationIssue(
                    "missing_certificate",
                    f"record {record.record_id} references missing "
                    f"certificate {record.cert_id}",
                    file=source,
                    record_id=record.record_id,
                )
            )
        _check_year(issues, record, "event_year", source)
        _check_year(issues, record, "birth_year", source)
        raw_age = record.attributes.get("age")
        try:
            age = _int_or_none(raw_age)
        except (TypeError, ValueError):
            age = None
            issues.append(
                ValidationIssue(
                    "unparseable_age",
                    f"age {raw_age!r} is not a number",
                    file=source,
                    record_id=record.record_id,
                    cert_id=record.cert_id,
                )
            )
        if age is not None and not AGE_RANGE[0] <= age <= AGE_RANGE[1]:
            issues.append(
                ValidationIssue(
                    "age_out_of_range",
                    f"age {age} outside {AGE_RANGE}",
                    file=source,
                    record_id=record.record_id,
                    cert_id=record.cert_id,
                )
            )
        gender = record.attributes.get("gender")
        if gender not in (None, "") and gender not in GENDERS:
            issues.append(
                ValidationIssue(
                    "bad_gender",
                    f"gender {gender!r} not in {GENDERS}",
                    file=source,
                    record_id=record.record_id,
                    cert_id=record.cert_id,
                )
            )
        for attribute, bound in (("latitude", 90.0), ("longitude", 180.0)):
            raw = record.attributes.get(attribute)
            if raw in (None, ""):
                continue
            try:
                value = float(raw)
            except (TypeError, ValueError):
                value = None
            if value is None or not -bound <= value <= bound:
                issues.append(
                    ValidationIssue(
                        "bad_geo",
                        f"{attribute} {raw!r} outside ±{bound:g}",
                        file=source,
                        record_id=record.record_id,
                        cert_id=record.cert_id,
                    )
                )
    return issues


def clean_dataset(
    name: str,
    records: Iterable[Record],
    certificates: Iterable[Certificate],
    issues: list[ValidationIssue],
) -> tuple[Dataset, QuarantineReport]:
    """Drop everything implicated by ``issues`` and build a clean Dataset.

    The quarantine unit is the *certificate*: dropping any single record
    would leave its certificate with a dangling role reference, so a
    record-level issue takes the whole certificate (and all its records)
    with it.  Records whose certificate does not exist are dropped alone.
    """
    records = list(records)
    certificates = list(certificates)
    bad_certs = {i.cert_id for i in issues if i.cert_id is not None}
    bad_rids = {
        i.record_id
        for i in issues
        if i.code == "missing_certificate" and i.record_id is not None
    }
    kept_records = [
        r
        for r in records
        if r.cert_id not in bad_certs and r.record_id not in bad_rids
    ]
    kept_certs = [c for c in certificates if c.cert_id not in bad_certs]
    report = QuarantineReport(
        issues=list(issues),
        certificates_dropped=len(certificates) - len(kept_certs),
        records_dropped=len(records) - len(kept_records),
    )
    try:
        dataset = Dataset(name, kept_records, kept_certs)
    except ValueError as exc:  # pragma: no cover - quarantine invariant
        raise DatasetLoadError(
            f"dataset still inconsistent after quarantine: {exc}"
        ) from exc
    if report.issues:
        logger.warning("%s: %s", name, report.summary())
    return dataset, report


def format_issues(issues: Sequence[ValidationIssue], limit: int = 5) -> str:
    """Human-readable digest of ``issues`` (first ``limit`` + a count)."""
    shown = "; ".join(str(issue) for issue in issues[:limit])
    extra = len(issues) - limit
    if extra > 0:
        shown += f"; ... and {extra} more issue(s)"
    return shown
