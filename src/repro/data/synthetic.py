"""Pre-configured synthetic datasets standing in for IOS, KIL, and BHIC.

Each builder runs the population simulator with parameters shaped to the
source it substitutes (see DESIGN.md "Substitutions") and then applies the
transcription-noise model:

* ``make_ios_dataset`` — rural island population (all Skye parishes,
  strong out-of-parish moves are rare), 1861–1901;
* ``make_kil_dataset`` — larger town population concentrated in few
  districts with more migration churn and worse address quality, 1861–1901;
* ``make_bhic_dataset`` — scalability workloads over configurable time
  windows mirroring Table 6's BHIC slices;
* ``make_tiny_dataset`` — a fast deterministic dataset for unit tests.

``scale`` multiplies the founder population.  ``scale=1.0`` approximates
the paper's record counts; the default benches use smaller scales so the
full harness runs on a laptop in minutes (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.data.corruption import CorruptionConfig, Corruptor
from repro.data.population import PopulationConfig, PopulationSimulator
from repro.data.records import Dataset

__all__ = [
    "make_ios_dataset",
    "make_ios_census_dataset",
    "make_kil_dataset",
    "make_bhic_dataset",
    "make_tiny_dataset",
    "split_stream",
]


def _build(
    name: str,
    population: PopulationConfig,
    corruption: CorruptionConfig | None = None,
) -> Dataset:
    clean = PopulationSimulator(population).run(name)
    corruptor = Corruptor(corruption or CorruptionConfig(seed=population.seed + 100))
    noisy = corruptor.corrupt_dataset(clean)
    return noisy


def make_ios_dataset(scale: float = 0.25, seed: int = 11) -> Dataset:
    """Isle-of-Skye-like dataset: rural, dispersed parishes, 1861–1901.

    ``scale=1.0`` yields on the order of the paper's 34k birth-parent
    records; the default 0.25 keeps experiments laptop-fast.
    """
    config = PopulationConfig(
        start_year=1861,
        end_year=1901,
        n_founder_couples=max(4, int(420 * scale)),
        immigrant_couples_per_year=max(1, int(6 * scale)),
        seed=seed,
    )
    return _build("IOS", config)


def make_kil_dataset(scale: float = 0.25, seed: int = 13) -> Dataset:
    """Kilmarnock-like dataset: town population, fewer districts, more
    churn, poorer address/occupation coverage (Table 1's KIL column)."""
    population = PopulationConfig(
        start_year=1861,
        end_year=1901,
        n_founder_couples=max(4, int(900 * scale)),
        immigrant_couples_per_year=max(1, int(14 * scale)),
        move_prob=0.09,
        parish_move_prob=0.4,
        parishes=("portree", "snizort", "strath", "duirinish"),
        seed=seed,
    )
    # Table 1 KIL column: addresses missing 25%, occupation 71%.
    corruption = CorruptionConfig(
        typo_prob=0.08,
        variant_prob=0.12,
        missing_probs={
            "first_name": 0.01,
            "surname": 0.0002,
            "address": 0.25,
            "parish": 0.05,
            "occupation": 0.71,
            "age": 0.05,
            "cause_of_death": 0.03,
        },
        seed=seed + 100,
    )
    return _build("KIL", population, corruption)


def make_bhic_dataset(
    start_year: int,
    end_year: int = 1935,
    scale: float = 0.1,
    seed: int = 17,
) -> Dataset:
    """BHIC-like scalability workload over ``[start_year, end_year]``.

    Table 6 grows the graph by widening the time window (1900–1935 up to
    1870–1935); this builder does the same: a longer window over the same
    population process yields proportionally more certificates.
    """
    config = PopulationConfig(
        start_year=start_year,
        end_year=end_year,
        n_founder_couples=max(4, int(1200 * scale)),
        immigrant_couples_per_year=max(1, int(20 * scale)),
        seed=seed,
    )
    return _build(f"BHIC-{start_year}-{end_year}", config)


def make_ios_census_dataset(scale: float = 0.25, seed: int = 11) -> Dataset:
    """IOS-like dataset *with* decennial census households (1861–1901).

    Same population process and seed as :func:`make_ios_dataset`, so the
    two variants are directly comparable in the census-evidence bench —
    the only difference is the additional census records.
    """
    config = PopulationConfig(
        start_year=1861,
        end_year=1901,
        n_founder_couples=max(4, int(420 * scale)),
        immigrant_couples_per_year=max(1, int(6 * scale)),
        census_years=(1861, 1871, 1881, 1891, 1901),
        seed=seed,
    )
    return _build("IOS+census", config)


def make_tiny_dataset(seed: int = 3) -> Dataset:
    """Small deterministic dataset (~a few hundred records) for tests."""
    config = PopulationConfig(
        start_year=1870,
        end_year=1890,
        n_founder_couples=12,
        immigrant_couples_per_year=1,
        seed=seed,
    )
    return _build("tiny", config)


def split_stream(
    dataset: Dataset, n_batches: int, base_fraction: float = 0.5
) -> tuple[Dataset, list[Dataset]]:
    """``(base, micro-batches)`` for streaming-ingest tests and benches.

    Certificates are ordered by id (the simulator issues ids
    chronologically, so this approximates arrival order); the first
    ``base_fraction`` become the ``base`` snapshot dataset and the rest
    are dealt round-robin-free into ``n_batches`` contiguous delta
    batches named ``b001`` … ``bNNN``.  Every certificate lands in
    exactly one part, so ingesting all batches reproduces the full
    dataset.
    """
    if n_batches < 1:
        raise ValueError("n_batches must be >= 1")
    cert_ids = sorted(dataset.certificates)
    n_base = max(1, int(len(cert_ids) * base_fraction))
    if len(cert_ids) - n_base < n_batches:
        raise ValueError(
            f"dataset has only {len(cert_ids) - n_base} delta certificates "
            f"for {n_batches} batches; lower base_fraction or n_batches"
        )

    def subset(name: str, keep: set[int]) -> Dataset:
        certs = [c for cid, c in dataset.certificates.items() if cid in keep]
        rids = {rid for c in certs for rid in c.member_record_ids()}
        return Dataset(
            name,
            [r for r in dataset.records.values() if r.record_id in rids],
            certs,
        )

    base = subset("base", set(cert_ids[:n_base]))
    delta_ids = cert_ids[n_base:]
    per_batch = len(delta_ids) // n_batches
    remainder = len(delta_ids) % n_batches
    batches: list[Dataset] = []
    cursor = 0
    for index in range(n_batches):
        size = per_batch + (1 if index < remainder else 0)
        chunk = set(delta_ids[cursor : cursor + size])
        cursor += size
        batches.append(subset(f"b{index + 1:03d}", chunk))
    return base, batches
