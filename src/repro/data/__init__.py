"""Certificate/record data model and synthetic population generation.

The model follows the paper's Section 3: a *certificate* (birth, death, or
marriage) contributes several *records*, one per person role appearing on
it — e.g. a birth certificate yields a baby (Bb), mother (Bm), and father
(Bf) record.  Entity resolution operates over records; ground truth is the
hidden person identifier each record carries.

Real Scottish vital-record datasets (IOS, KIL, DS, BHIC) are not publicly
redistributable, so this package also provides a demographic population
simulator that emits certificates with the same structural characteristics
(skewed name frequencies, surname change at marriage, missing values,
transcription errors) together with complete ground truth — see DESIGN.md
"Substitutions".
"""

from repro.data.roles import (
    CertificateType,
    Role,
    birth_year_range,
    role_gender,
    LINKABLE_ROLE_PAIRS,
    PARENT_ROLE_GROUPS,
)
from repro.data.records import Certificate, Dataset, Record
from repro.data.schema import AttributeCategory, AttributeSpec, Schema, default_schema
from repro.data.corruption import CorruptionConfig, Corruptor
from repro.data.population import PopulationConfig, PopulationSimulator, Person
from repro.data.synthetic import (
    make_bhic_dataset,
    make_ios_census_dataset,
    make_ios_dataset,
    make_kil_dataset,
    make_tiny_dataset,
)
from repro.data.loader import (
    load_dataset_checked,
    load_dataset_csv,
    save_dataset_csv,
)
from repro.data.validate import (
    DatasetLoadError,
    QuarantineReport,
    ValidationIssue,
    validate_dataset_parts,
)

__all__ = [
    "CertificateType",
    "Role",
    "birth_year_range",
    "role_gender",
    "LINKABLE_ROLE_PAIRS",
    "PARENT_ROLE_GROUPS",
    "Certificate",
    "Dataset",
    "Record",
    "AttributeCategory",
    "AttributeSpec",
    "Schema",
    "default_schema",
    "CorruptionConfig",
    "Corruptor",
    "PopulationConfig",
    "PopulationSimulator",
    "Person",
    "make_ios_dataset",
    "make_ios_census_dataset",
    "make_kil_dataset",
    "make_bhic_dataset",
    "make_tiny_dataset",
    "load_dataset_csv",
    "load_dataset_checked",
    "save_dataset_csv",
    "DatasetLoadError",
    "QuarantineReport",
    "ValidationIssue",
    "validate_dataset_parts",
]
