"""Transcription-noise model: typos, spelling variants, missing values.

Historical registers were handwritten, then transcribed; the paper's
Table 1 shows the result — pervasive missing values (57% of occupations in
the Kilmarnock data) and name variations.  ``Corruptor`` post-processes a
clean simulated :class:`~repro.data.records.Dataset` into one with these
characteristics while leaving the ground truth untouched.

Corruption kinds:

* **character typos** — insert / delete / substitute / transpose, the
  standard keyboard-and-quill error model;
* **known variants** — swap a name for a documented spelling variant
  ("catherine" → "cathrine", "macdonald" → "mcdonald");
* **missing values** — blank a field with a per-attribute probability;
* **age perturbation** — recorded ages are off by ±1 year occasionally.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field

from repro.data.names import NAME_VARIANTS
from repro.data.records import Dataset, Record
from repro.utils.rng import make_rng, spawn_rng

__all__ = ["CorruptionConfig", "Corruptor"]

_ALPHABET = string.ascii_lowercase


def _default_missing_probs() -> dict[str, float]:
    # Calibrated to the paper's Table 1 IOS column (missing counts over
    # 12,285 deceased entities): first name 3.5%, surname ~0, address
    # 1.2%, occupation 57%.
    return {
        "first_name": 0.035,
        "surname": 0.0005,
        "address": 0.012,
        "parish": 0.01,
        "occupation": 0.57,
        "age": 0.04,
        "cause_of_death": 0.02,
    }


@dataclass
class CorruptionConfig:
    """Noise levels applied per record attribute."""

    typo_prob: float = 0.07          # per name-ish string value
    variant_prob: float = 0.10       # swap for a documented variant
    age_error_prob: float = 0.12     # recorded age off by one
    missing_probs: dict[str, float] = field(default_factory=_default_missing_probs)
    seed: int = 7

    def __post_init__(self) -> None:
        for prob in (self.typo_prob, self.variant_prob, self.age_error_prob):
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"probability out of range: {prob}")
        for attr, prob in self.missing_probs.items():
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"missing prob for {attr} out of range: {prob}")


class Corruptor:
    """Applies the configured noise to a dataset, record by record.

    Corruption is independent per record, mirroring per-transcription
    errors: the same person's name can be corrupted differently on
    different certificates, which is precisely what makes the linkage
    non-trivial.
    """

    # Attributes treated as name-like strings for typos/variants.
    _NAME_ATTRS = ("first_name", "surname")
    _TEXT_ATTRS = ("address", "occupation", "parish")

    def __init__(self, config: CorruptionConfig | None = None) -> None:
        self.config = config or CorruptionConfig()
        root = make_rng(self.config.seed)
        self._rng_typo = spawn_rng(root, "typos")
        self._rng_missing = spawn_rng(root, "missing")

    def corrupt_dataset(self, dataset: Dataset) -> Dataset:
        """Return a new :class:`Dataset` with noise applied to every record."""
        new_records = [self.corrupt_record(r) for r in dataset]
        return Dataset(dataset.name, new_records, dataset.certificates.values())

    def corrupt_record(self, record: Record) -> Record:
        """Return a corrupted copy of ``record`` (ground truth preserved)."""
        attrs = dict(record.attributes)
        for attr in self._NAME_ATTRS:
            value = attrs.get(attr)
            if not value:
                continue
            attrs[attr] = self._corrupt_name(value)
        for attr in self._TEXT_ATTRS:
            value = attrs.get(attr)
            if value and self._rng_typo.random() < self.config.typo_prob / 2:
                attrs[attr] = self._typo(value)
        if "age" in attrs and attrs["age"]:
            if self._rng_typo.random() < self.config.age_error_prob:
                delta = self._rng_typo.choice((-1, 1))
                attrs["age"] = str(max(0, int(attrs["age"]) + delta))
        for attr, prob in self.config.missing_probs.items():
            if attr in attrs and self._rng_missing.random() < prob:
                attrs[attr] = ""
        return Record(
            record_id=record.record_id,
            cert_id=record.cert_id,
            role=record.role,
            attributes=attrs,
            person_id=record.person_id,
        )

    # ------------------------------------------------------------------

    def _corrupt_name(self, value: str) -> str:
        rng = self._rng_typo
        if rng.random() < self.config.variant_prob:
            variant = self._variant_of(value)
            if variant is not None:
                return variant
        if rng.random() < self.config.typo_prob:
            return self._typo(value)
        return value

    def _variant_of(self, value: str) -> str | None:
        """A documented spelling variant of ``value`` (whole or per token)."""
        rng = self._rng_typo
        variants = NAME_VARIANTS.get(value)
        if variants:
            return rng.choice(variants)
        tokens = value.split()
        if len(tokens) > 1:
            # Compound names: maybe vary one token.
            for i, token in enumerate(tokens):
                token_variants = NAME_VARIANTS.get(token)
                if token_variants:
                    tokens[i] = rng.choice(token_variants)
                    return " ".join(tokens)
        return None

    def _typo(self, value: str) -> str:
        """Apply one random character edit to ``value``."""
        rng = self._rng_typo
        if not value:
            return value
        kind = rng.choice(("insert", "delete", "substitute", "transpose"))
        pos = rng.randrange(len(value))
        if kind == "insert":
            return value[:pos] + rng.choice(_ALPHABET) + value[pos:]
        if kind == "delete" and len(value) > 1:
            return value[:pos] + value[pos + 1 :]
        if kind == "substitute":
            replacement = rng.choice(_ALPHABET)
            return value[:pos] + replacement + value[pos + 1 :]
        if kind == "transpose" and len(value) > 1:
            pos = min(pos, len(value) - 2)
            return (
                value[:pos] + value[pos + 1] + value[pos] + value[pos + 2 :]
            )
        return value
