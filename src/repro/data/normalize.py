"""Name standardisation for blocking.

Historical record linkage conventionally standardises names before
indexing ("Wm" → "william", "M'Donald" → "macdonald") using variant
dictionaries compiled by domain experts; the paper's production setting
(Scotland's People search) does the same.  Standardisation is applied only
in *blocking* — similarity scoring always compares the raw transcribed
values, so a variant still costs similarity, it just no longer prevents a
pair from being considered at all.
"""

from __future__ import annotations

from functools import lru_cache

from repro.data.names import NAME_VARIANTS

__all__ = ["canonical_name", "canonical_name_phrase"]


def _build_variant_map() -> dict[str, str]:
    mapping: dict[str, str] = {}
    for canonical, variants in NAME_VARIANTS.items():
        for variant in variants:
            # First writer wins on conflicting variants; dictionary order
            # is by descending name frequency, which is the right tiebreak.
            mapping.setdefault(variant, canonical)
    return mapping


_VARIANT_TO_CANONICAL = _build_variant_map()


@lru_cache(maxsize=65536)
def canonical_name(token: str) -> str:
    """Canonical form of one name token.

    Applies the variant dictionary and normalises Scottish surname
    prefixes (``mc`` / ``m'`` → ``mac``).
    """
    token = token.strip().lower()
    if not token:
        return token
    mapped = _VARIANT_TO_CANONICAL.get(token)
    if mapped is not None:
        token = mapped
    if token.startswith("m'"):
        token = "mac" + token[2:]
    elif token.startswith("mc") and not token.startswith("mac"):
        token = "mac" + token[2:]
    return _VARIANT_TO_CANONICAL.get(token, token)


def canonical_name_phrase(value: str) -> str:
    """Canonicalise each whitespace-separated token of ``value``."""
    return " ".join(canonical_name(token) for token in value.split())
