"""CSV persistence for datasets.

Two files are written per dataset: ``<stem>.records.csv`` (one row per
record, QID attributes as columns, plus role/certificate/person columns)
and ``<stem>.certs.csv`` (one row per certificate).  The format round
trips exactly, including missing values (empty cells).

Loading reports malformed rows as :class:`~repro.data.validate.
DatasetLoadError` carrying the file name and row number; with
``on_error="skip"`` bad rows are logged, recorded as validation issues,
and skipped.  :func:`load_dataset_checked` layers full schema validation
(``repro.data.validate``) on top, with strict and quarantine modes.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role
from repro.data.validate import (
    DatasetLoadError,
    QuarantineReport,
    ValidationIssue,
    clean_dataset,
    format_issues,
    validate_dataset_parts,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "save_dataset_csv",
    "load_dataset_csv",
    "load_dataset_checked",
    "read_dataset_rows",
]

logger = get_logger("data.loader")

_RECORD_FIXED = ("record_id", "cert_id", "role", "person_id")
_CERT_FIXED = ("cert_id", "cert_type", "year", "parish")


def save_dataset_csv(dataset: Dataset, stem: str | Path) -> tuple[Path, Path]:
    """Write ``dataset`` to ``<stem>.records.csv`` and ``<stem>.certs.csv``.

    Returns the two paths written.
    """
    stem = Path(stem)
    stem.parent.mkdir(parents=True, exist_ok=True)
    attr_names = sorted({k for r in dataset for k in r.attributes})
    records_path = stem.with_suffix(".records.csv")
    with records_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(_RECORD_FIXED) + attr_names)
        for record in sorted(dataset, key=lambda r: r.record_id):
            row = [
                record.record_id,
                record.cert_id,
                record.role.value,
                record.person_id,
            ]
            row += [record.attributes.get(a, "") for a in attr_names]
            writer.writerow(row)
    certs_path = stem.with_suffix(".certs.csv")
    with certs_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        role_cols = [role.value for role in Role]
        writer.writerow(list(_CERT_FIXED) + role_cols + ["children", "others"])
        for cert in sorted(dataset.certificates.values(), key=lambda c: c.cert_id):
            row = [cert.cert_id, cert.cert_type.value, cert.year, cert.parish]
            row += [cert.roles.get(role, "") for role in Role]
            row += [
                ";".join(str(rid) for rid in cert.children),
                ";".join(str(rid) for rid in cert.others),
            ]
            writer.writerow(row)
    return records_path, certs_path


def _record_from_row(row: dict) -> Record:
    attributes = {
        key: value
        for key, value in row.items()
        if key is not None
        and key not in _RECORD_FIXED
        and value not in ("", None)
    }
    return Record(
        record_id=int(row["record_id"]),
        cert_id=int(row["cert_id"]),
        role=Role(row["role"]),
        attributes=attributes,
        person_id=int(row["person_id"]),
    )


def _certificate_from_row(row: dict) -> Certificate:
    roles = {role: int(row[role.value]) for role in Role if row.get(role.value)}
    # Multi-member census columns are absent from files written by
    # older versions; treat them as empty.
    children = [int(rid) for rid in (row.get("children") or "").split(";") if rid]
    others = [int(rid) for rid in (row.get("others") or "").split(";") if rid]
    return Certificate(
        cert_id=int(row["cert_id"]),
        cert_type=CertificateType(row["cert_type"]),
        year=int(row["year"]),
        parish=row["parish"],
        roles=roles,
        children=children,
        others=others,
    )


def _read_rows(path, parse, on_error, issues, out):
    """Parse every CSV row of ``path``; bad rows raise or are skipped.

    Row numbers are 1-based file lines (the header is line 1), so the
    error message points at the exact line to inspect.
    """
    try:
        handle = path.open(newline="")
    except OSError as exc:
        raise DatasetLoadError(str(exc), path=path) from exc
    with handle:
        reader = csv.DictReader(handle)
        for lineno, row in enumerate(reader, start=2):
            try:
                out.append(parse(row))
            except (KeyError, TypeError, ValueError) as exc:
                message = f"cannot parse row: {type(exc).__name__}: {exc}"
                if on_error == "raise":
                    raise DatasetLoadError(message, path=path, row=lineno) from exc
                logger.warning("%s, row %d skipped: %s", path.name, lineno, message)
                if issues is not None:
                    issues.append(
                        ValidationIssue(
                            "unparseable_row",
                            message,
                            file=path.name,
                            row=lineno,
                        )
                    )


def read_dataset_rows(
    stem: str | Path,
    on_error: str = "raise",
    issues: list[ValidationIssue] | None = None,
) -> tuple[list[Record], list[Certificate]]:
    """Parse the two CSVs into raw record/certificate lists.

    No cross-referential validation happens here — that is
    :func:`repro.data.validate.validate_dataset_parts`'s job, and
    ``Dataset`` construction enforces its own invariants.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    stem = Path(stem)
    records: list[Record] = []
    certificates: list[Certificate] = []
    _read_rows(
        stem.with_suffix(".records.csv"), _record_from_row, on_error, issues, records
    )
    _read_rows(
        stem.with_suffix(".certs.csv"),
        _certificate_from_row,
        on_error,
        issues,
        certificates,
    )
    return records, certificates


def load_dataset_csv(
    stem: str | Path,
    name: str | None = None,
    on_error: str = "raise",
    issues: list[ValidationIssue] | None = None,
) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset_csv`.

    Malformed rows raise :class:`DatasetLoadError` naming the file and
    row (or, with ``on_error="skip"``, are logged and skipped —
    appending to ``issues`` when given).  Cross-reference problems that
    survive row parsing surface as ``DatasetLoadError`` too.
    """
    stem = Path(stem)
    records, certificates = read_dataset_rows(stem, on_error, issues)
    try:
        return Dataset(name or stem.name, records, certificates)
    except ValueError as exc:
        raise DatasetLoadError(str(exc), path=stem) from exc


def load_dataset_checked(
    stem: str | Path,
    name: str | None = None,
    mode: str = "strict",
    report_path: str | Path | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[Dataset, QuarantineReport]:
    """Load with full schema validation (``repro.data.validate``).

    ``mode="strict"`` fails fast: the first unparseable row, or any
    structural/value issue, raises an actionable
    :class:`DatasetLoadError`.  ``mode="quarantine"`` drops the
    offending certificates instead and returns the surviving dataset
    plus a :class:`QuarantineReport` (written to ``report_path`` as
    JSONL when given, mirrored into ``metrics``).
    """
    if mode not in ("strict", "quarantine"):
        raise ValueError(f"mode must be 'strict' or 'quarantine', got {mode!r}")
    stem = Path(stem)
    issues: list[ValidationIssue] = []
    on_error = "raise" if mode == "strict" else "skip"
    records, certificates = read_dataset_rows(stem, on_error, issues)
    issues.extend(validate_dataset_parts(records, certificates, source=stem.name))
    if mode == "strict":
        if issues:
            raise DatasetLoadError(
                format_issues(issues), path=stem, issues=issues
            )
        dataset = Dataset(name or stem.name, records, certificates)
        report = QuarantineReport()
    else:
        dataset, report = clean_dataset(
            name or stem.name, records, certificates, issues
        )
    report.to_metrics(metrics)
    if report_path is not None and report.issues:
        report.write_jsonl(report_path)
    return dataset, report
