"""CSV persistence for datasets.

Two files are written per dataset: ``<stem>.records.csv`` (one row per
record, QID attributes as columns, plus role/certificate/person columns)
and ``<stem>.certs.csv`` (one row per certificate).  The format round
trips exactly, including missing values (empty cells).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.records import Certificate, Dataset, Record
from repro.data.roles import CertificateType, Role

__all__ = ["save_dataset_csv", "load_dataset_csv"]

_RECORD_FIXED = ("record_id", "cert_id", "role", "person_id")
_CERT_FIXED = ("cert_id", "cert_type", "year", "parish")


def save_dataset_csv(dataset: Dataset, stem: str | Path) -> tuple[Path, Path]:
    """Write ``dataset`` to ``<stem>.records.csv`` and ``<stem>.certs.csv``.

    Returns the two paths written.
    """
    stem = Path(stem)
    stem.parent.mkdir(parents=True, exist_ok=True)
    attr_names = sorted({k for r in dataset for k in r.attributes})
    records_path = stem.with_suffix(".records.csv")
    with records_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(_RECORD_FIXED) + attr_names)
        for record in sorted(dataset, key=lambda r: r.record_id):
            row = [
                record.record_id,
                record.cert_id,
                record.role.value,
                record.person_id,
            ]
            row += [record.attributes.get(a, "") for a in attr_names]
            writer.writerow(row)
    certs_path = stem.with_suffix(".certs.csv")
    with certs_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        role_cols = [role.value for role in Role]
        writer.writerow(list(_CERT_FIXED) + role_cols + ["children", "others"])
        for cert in sorted(dataset.certificates.values(), key=lambda c: c.cert_id):
            row = [cert.cert_id, cert.cert_type.value, cert.year, cert.parish]
            row += [cert.roles.get(role, "") for role in Role]
            row += [
                ";".join(str(rid) for rid in cert.children),
                ";".join(str(rid) for rid in cert.others),
            ]
            writer.writerow(row)
    return records_path, certs_path


def load_dataset_csv(stem: str | Path, name: str | None = None) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset_csv`."""
    stem = Path(stem)
    records_path = stem.with_suffix(".records.csv")
    certs_path = stem.with_suffix(".certs.csv")
    records: list[Record] = []
    with records_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            attributes = {
                key: value
                for key, value in row.items()
                if key not in _RECORD_FIXED and value != ""
            }
            records.append(
                Record(
                    record_id=int(row["record_id"]),
                    cert_id=int(row["cert_id"]),
                    role=Role(row["role"]),
                    attributes=attributes,
                    person_id=int(row["person_id"]),
                )
            )
    certificates: list[Certificate] = []
    with certs_path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            roles = {
                role: int(row[role.value])
                for role in Role
                if row.get(role.value)
            }
            # Multi-member census columns are absent from files written by
            # older versions; treat them as empty.
            children = [
                int(rid) for rid in (row.get("children") or "").split(";") if rid
            ]
            others = [
                int(rid) for rid in (row.get("others") or "").split(";") if rid
            ]
            certificates.append(
                Certificate(
                    cert_id=int(row["cert_id"]),
                    cert_type=CertificateType(row["cert_type"]),
                    year=int(row["year"]),
                    parish=row["parish"],
                    roles=roles,
                    children=children,
                    others=others,
                )
            )
    return Dataset(name or stem.name, records, certificates)
