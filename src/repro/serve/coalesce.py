"""Request coalescing: identical in-flight queries share one computation.

Family-pedigree traffic is heavily skewed — the same famous ancestors
are searched again and again — so under load a server sees *bursts* of
identical queries arriving faster than one search completes.  The
result cache only helps after the first answer lands; during the burst
every duplicate would still run the full search.  :class:`SingleFlight`
closes that gap: the first request for a key becomes the **leader** and
computes; concurrent duplicates become **followers** that block on the
leader's event and reuse its result, so N identical in-flight requests
cost one backend search.

This is deliberately a *thread* primitive (events + a lock), not an
asyncio one: the serving app runs requests on threads both under the
classic ``ThreadingHTTPServer`` and under the pre-fork worker's asyncio
front (which dispatches app calls into a thread pool), so one
implementation covers both deployment shapes.

Failure semantics: the leader publishes whatever it produced — including
an error response — and followers receive it as-is; a crashed leader
(exception escaping the compute function) wakes its followers with the
exception re-raised in each.  A follower whose wait exceeds ``timeout_s``
stops waiting and computes independently, so one wedged leader cannot
convoy the whole key forever.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

__all__ = ["SingleFlight"]


class _Flight:
    """One in-progress computation and its completion signal."""

    __slots__ = ("done", "value", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class SingleFlight:
    """Deduplicate concurrent calls with the same key.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, optional)
    receives ``<prefix>.leaders`` / ``<prefix>.followers`` /
    ``<prefix>.timeouts`` counters so coalescing effectiveness is
    visible on ``/metricz``.
    """

    def __init__(
        self,
        metrics: Any = None,
        prefix: str = "serve.coalesce",
        timeout_s: float | None = 10.0,
    ) -> None:
        self._flights: dict[Hashable, _Flight] = {}
        self._lock = threading.Lock()
        self._metrics = metrics
        self._prefix = prefix
        self.timeout_s = timeout_s
        self.leaders = 0
        self.followers = 0
        self.timeouts = 0

    def _count(self, what: str) -> None:
        setattr(self, what, getattr(self, what) + 1)
        if self._metrics is not None:
            self._metrics.inc(f"{self._prefix}.{what}")

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Any:
        """Return ``fn()`` for ``key``, sharing one in-flight execution.

        Exactly one concurrent caller per key runs ``fn``; the rest wait
        and receive the same result object (callers must treat it as
        shared/read-only).  If the leader raised, followers re-raise the
        same exception.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                flight.followers += 1
                leader = False
        if leader:
            self._count("leaders")
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
            return flight.value
        self._count("followers")
        if not flight.done.wait(self.timeout_s):
            # Wedged leader: stop convoying behind it.  The flight table
            # entry is left for the leader to clear; this caller simply
            # computes on its own.
            self._count("timeouts")
            return fn()
        if flight.error is not None:
            raise flight.error
        return flight.value

    def stats(self) -> dict:
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "timeouts": self.timeouts,
        }
