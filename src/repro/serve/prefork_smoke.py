"""Pre-fork serving smoke check (the ``make prefork-smoke`` gate).

Builds a store with two snapshots of tiny synthetic datasets, boots a
:class:`~repro.serve.prefork.PreforkMaster` with four workers on an
ephemeral port, and drives the fleet through its failure modes under
continuous client traffic:

1. **Kill one worker mid-traffic** — SIGKILL a worker while requests
   are in flight and assert the supervisor restarts it AND that not a
   single request observed a non-2xx status (the kernel re-balances
   accepts onto the surviving workers; nothing is dropped).
2. **One zero-downtime reload** — POST ``/v1/reload`` targeting the
   second snapshot and assert the one-at-a-time worker rotation
   completes with zero non-2xx responses, after which ``/healthz``
   reports the new snapshot's entity count.

Exits non-zero on any violated invariant.  Run with
``python -m repro.serve.prefork_smoke``.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_tiny_dataset
from repro.pedigree import build_pedigree_graph
from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, ServeError
from repro.serve.prefork import (
    HEARTBEAT_DIRNAME,
    PreforkConfig,
    PreforkMaster,
)
from repro.store import SnapshotStore

__all__ = ["main"]

WORKERS = 4
BOOT_TIMEOUT_S = 60.0
RESTART_TIMEOUT_S = 30.0


class _Traffic:
    """Background request loop that tallies statuses, never raises."""

    def __init__(self, base_url: str, payload: dict) -> None:
        self._url = base_url + "/v1/search"
        self._body = json.dumps(payload).encode("utf-8")
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.ok = 0
        self.bad: list[tuple[int | str, str]] = []

    def _one(self) -> None:
        request = urllib.request.Request(
            self._url,
            data=self._body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=15.0) as response:
                if 200 <= response.status < 300:
                    self.ok += 1
                else:  # pragma: no cover - urlopen raises on non-2xx
                    self.bad.append((response.status, ""))
                response.read()
        except urllib.error.HTTPError as error:
            self.bad.append((error.code, error.read().decode("utf-8", "replace")))
        except OSError as error:
            # A refused/reset connection is downtime just as much as a
            # 5xx — count it against the zero-non-2xx budget.
            self.bad.append(("conn", str(error)))

    def _run(self) -> None:
        while not self._stop.is_set():
            self._one()
            time.sleep(0.02)

    def __enter__(self) -> "_Traffic":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=30.0)


def _build_store(store_dir: Path) -> tuple[str, str, dict, int]:
    """Two snapshots (different datasets) in one store.

    Returns ``(first_id, second_id, probe_payload, second_entities)``
    where the probe payload is a search body valid against the *first*
    snapshot.
    """
    store = SnapshotStore(store_dir)
    config = SnapsConfig()
    ids = []
    probe: dict | None = None
    second_entities = 0
    for seed in (3, 7):
        dataset = make_tiny_dataset(seed=seed)
        result = SnapsResolver(config).resolve(dataset)
        graph = build_pedigree_graph(dataset, result.entities)
        manifest = store.save(result, graph=graph, config=config)
        ids.append(manifest.snapshot_id)
        if probe is None:
            entity = next(
                e for e in graph if e.first("first_name") and e.first("surname")
            )
            probe = {
                "first_name": entity.first("first_name"),
                "surname": entity.first("surname"),
                "top": 5,
            }
        second_entities = len(graph)
    if ids[0] == ids[1]:
        raise RuntimeError("expected two distinct snapshots, got one")
    assert probe is not None
    return ids[0], ids[1], probe, second_entities


def _worker_pids(run_dir: Path) -> set[int]:
    return {
        int(path.stem)
        for path in (run_dir / HEARTBEAT_DIRNAME).glob("*.hb")
    }


def _wait_for(predicate, timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise TimeoutError(f"timed out after {timeout_s:.0f}s waiting for {what}")


def _start_master(store_dir: Path, run_dir: Path, snapshot_id: str) -> int:
    """Fork a child that runs the pre-fork master; returns its pid."""
    master = PreforkMaster(
        store_dir,
        config=PreforkConfig(workers=WORKERS, run_dir=run_dir),
        serve_config=ServeConfig(host="127.0.0.1", port=0),
        snapshot_id=snapshot_id,
    )
    pid = os.fork()
    if pid == 0:
        status = 0
        try:
            master.start()
        except BaseException:  # pragma: no cover - crash path
            import traceback

            traceback.print_exc()
            status = 1
        finally:
            os._exit(status)
    return pid


def main(argv: list[str] | None = None) -> int:
    tmp = Path(tempfile.mkdtemp(prefix="prefork-smoke-"))
    store_dir = tmp / "store"
    run_dir = tmp / "run"
    master_pid = 0
    try:
        first_id, second_id, probe, second_entities = _build_store(store_dir)
        master_pid = _start_master(store_dir, run_dir, first_id)

        address_file = run_dir / "address.json"
        _wait_for(address_file.exists, BOOT_TIMEOUT_S, "address.json")
        address = json.loads(address_file.read_text())
        base_url = f"http://{address['host']}:{address['port']}"
        _wait_for(
            lambda: len(_worker_pids(run_dir)) >= WORKERS,
            BOOT_TIMEOUT_S,
            f"{WORKERS} worker heartbeats",
        )
        client = ServeClient(base_url, timeout_s=30.0)
        health = client.healthz()
        if health["status"] != "ok":
            print(f"prefork-smoke: bad /healthz: {health}", file=sys.stderr)
            return 1

        # 1. Kill one worker mid-traffic: supervised restart, zero
        #    non-2xx observed by clients.
        before = _worker_pids(run_dir)
        victim = sorted(before)[0]
        with _Traffic(base_url, probe) as traffic:
            time.sleep(0.5)  # traffic flowing before the kill
            os.kill(victim, signal.SIGKILL)
            _wait_for(
                lambda: len(_worker_pids(run_dir) - {victim}) >= WORKERS,
                RESTART_TIMEOUT_S,
                "supervised worker restart",
            )
            time.sleep(0.5)  # traffic flowing after the restart
        restarted = _worker_pids(run_dir) - before
        if not restarted:
            print("prefork-smoke: no replacement worker appeared", file=sys.stderr)
            return 1
        if traffic.bad:
            print(
                f"prefork-smoke: {len(traffic.bad)} non-2xx during worker "
                f"kill (first: {traffic.bad[0]})",
                file=sys.stderr,
            )
            return 1
        if traffic.ok < 10:
            print(
                f"prefork-smoke: only {traffic.ok} requests during kill "
                "window — traffic loop is broken",
                file=sys.stderr,
            )
            return 1
        kill_ok = traffic.ok

        # 2. Zero-downtime reload onto the second snapshot: rolling
        #    worker rotation, zero non-2xx, new snapshot visible after.
        with _Traffic(base_url, probe) as traffic:
            time.sleep(0.3)
            try:
                reloaded = client.reload(second_id)
            except ServeError as error:
                print(f"prefork-smoke: reload failed: {error}", file=sys.stderr)
                return 1
            time.sleep(0.3)
        if reloaded.get("status") != "reloaded" or reloaded.get("snapshot") != second_id:
            print(f"prefork-smoke: bad reload payload: {reloaded}", file=sys.stderr)
            return 1
        if traffic.bad:
            print(
                f"prefork-smoke: {len(traffic.bad)} non-2xx during reload "
                f"(first: {traffic.bad[0]})",
                file=sys.stderr,
            )
            return 1
        # The worker that relayed the reload response drains briefly
        # before exiting; once it is gone every replica serves the new
        # snapshot.
        _wait_for(
            lambda: client.healthz()["entities"] == second_entities,
            RESTART_TIMEOUT_S,
            f"every worker to report {second_entities} entities",
        )

        print(
            f"prefork-smoke ok: {WORKERS} workers, worker {victim} killed "
            f"and restarted with {kill_ok} requests and 0 non-2xx, reload "
            f"{first_id} -> {second_id} with {traffic.ok} requests and "
            "0 non-2xx"
        )
        return 0
    except TimeoutError as error:
        print(f"prefork-smoke: {error}", file=sys.stderr)
        return 1
    finally:
        if master_pid:
            try:
                os.kill(master_pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                done, _ = os.waitpid(master_pid, os.WNOHANG)
                if done == master_pid:
                    break
                time.sleep(0.1)
            else:  # pragma: no cover - hung master
                os.kill(master_pid, signal.SIGKILL)
                os.waitpid(master_pid, 0)
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":  # pragma: no cover - exercised via make prefork-smoke
    raise SystemExit(main())
