"""Pre-fork serving tier over a shared memory-mapped snapshot.

Python's GIL caps one :class:`~repro.serve.app.ServeHTTPServer` process
at roughly one core of search throughput no matter how many request
threads it runs.  The classic escape is the pre-fork model (nginx,
gunicorn, postgres): a **master** process prepares everything expensive
exactly once, then ``fork()``\\ s N workers that inherit the prepared
state and share one listening socket — N processes, N GILs, one copy of
the data.

The master here:

1. loads the snapshot with ``memmap=True`` — the pedigree graph is
   materialised eagerly (copy-on-write shared across the fork), while
   both indexes stay read-only ``numpy.memmap`` views of the snapshot's
   raw artefact tier, so workers share the *physical pages* of the
   index data and per-worker private RSS stays near zero;
2. calls :func:`gc.freeze` so the garbage collector never rewrites the
   refcount-laden pages of the pre-fork heap (un-frozen, a single GC
   pass in any worker would un-share most of the graph);
3. binds the listening socket (workers inherit the fd; with
   ``reuse_port`` each worker binds its own ``SO_REUSEPORT`` socket
   instead) and forks the workers;
4. supervises them with the ``repro.supervise`` heartbeat substrate:
   crashed workers are reaped via ``waitpid`` and restarted, wedged
   workers (stale heartbeat mtime) are killed and restarted, and a
   worker that flaps too fast is restarted with linear backoff;
5. coordinates ``POST /v1/reload`` as a **zero-downtime rotation**: the
   worker that received the request forwards it to the master over the
   control directory; the master maps the *new* snapshot, then replaces
   workers one at a time — fork a replacement on the new snapshot, wait
   for its heartbeat (readiness), only then terminate the old worker.
   The first slot acts as a canary: if its replacement fails to come
   up, nothing has been terminated yet and the fleet rolls back to the
   old snapshot wholesale.  Old and new workers briefly serve side by
   side on the same socket, so no request ever meets a closed port.

Each worker runs an asyncio front on the shared socket: connections are
parsed on the event loop and dispatched into a small thread pool running
:meth:`ServingApp.handle` (which is where request coalescing — see
:mod:`repro.serve.coalesce` — deduplicates identical in-flight
searches).  Workers publish their metrics registry as JSON files under
the run directory; any worker answering ``/metricz`` merges every
sibling's snapshot into one fleet view (counters summed, histograms
bucket-merged), so the scrape target does not care which worker the
kernel picked.
"""

from __future__ import annotations

import asyncio
import gc
import json
import math
import os
import signal
import socket
import tempfile
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from http.client import responses as _REASONS
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry, histogram_quantile
from repro.serve.app import Response, ServeConfig, ServingApp
from repro.store import SnapshotStore
from repro.supervise.heartbeat import (
    HeartbeatWriter,
    clear_heartbeats,
    read_heartbeats,
)

__all__ = [
    "PreforkConfig",
    "PreforkMaster",
    "merge_metric_snapshots",
    "proc_private_bytes",
]

logger = get_logger("serve.prefork")

CONTROL_DIRNAME = "control"
METRICS_DIRNAME = "metrics"
HEARTBEAT_DIRNAME = "heartbeats"


@dataclass(frozen=True)
class PreforkConfig:
    """Tunables of the pre-fork master (the ``--workers`` deployment)."""

    workers: int = 2
    # Scratch directory for heartbeats / control files / metric
    # snapshots; a private tempdir is created (and kept) when None.
    run_dir: str | os.PathLike | None = None
    # Per-worker SO_REUSEPORT sockets instead of one inherited fd.
    reuse_port: bool = False
    # Threads per worker running ServingApp.handle under the asyncio
    # front (search is numpy/graph work that mostly holds the GIL, so a
    # handful is plenty — parallelism comes from processes).
    worker_threads: int = 4
    heartbeat_interval_s: float = 0.2
    # How often each worker publishes its metrics snapshot for the
    # fleet-merged /metricz view (any worker can answer the scrape).
    metrics_publish_interval_s: float = 1.0
    # A live worker whose heartbeat mtime is older than this is wedged.
    hang_timeout_s: float = 15.0
    # Master supervision loop cadence.
    poll_interval_s: float = 0.1
    # Linear restart backoff: attempt * backoff, capped.
    restart_backoff_s: float = 0.2
    restart_backoff_max_s: float = 2.0
    # How long a rotation waits for a replacement worker's heartbeat.
    rotate_ready_timeout_s: float = 30.0
    # How long a worker's forwarded /v1/reload waits for the master.
    reload_timeout_s: float = 120.0
    shutdown_grace_s: float = 5.0


# ----------------------------------------------------------------------
# Fleet metrics
# ----------------------------------------------------------------------


def proc_private_bytes(pid: int) -> int | None:
    """Private (unshared) resident bytes of ``pid``, or None off-Linux.

    ``Private_Clean + Private_Dirty`` from ``/proc/<pid>/smaps_rollup``
    is the honest per-worker cost of a fork-shared deployment: pages
    shared with the master (the memmapped indexes, the COW graph) are
    excluded, so this is what each *additional* worker actually costs.
    Falls back to full VmRSS when the kernel lacks smaps_rollup.
    """
    try:
        text = Path(f"/proc/{pid}/smaps_rollup").read_text()
    except OSError:
        try:
            text = Path(f"/proc/{pid}/status").read_text()
        except OSError:
            return None
        for line in text.splitlines():
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
        return None
    total = 0
    for line in text.splitlines():
        if line.startswith(("Private_Clean:", "Private_Dirty:")):
            total += int(line.split()[1]) * 1024
    return total


def merge_metric_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-worker ``MetricsRegistry.as_dict()`` blobs into one view.

    Counters and gauges sum (a fleet gauge like cache size is the total
    across workers); histograms merge bucket-wise and re-derive their
    quantile estimates.  All workers run the same code, so histograms of
    the same name always agree on buckets; disagreement raises.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, theirs in snap.get("histograms", {}).items():
            mine = histograms.get(name)
            if mine is None:
                histograms[name] = {
                    "buckets": list(theirs["buckets"]),
                    "counts": list(theirs["counts"]),
                    "count": theirs["count"],
                    "sum": theirs["sum"],
                    "min": theirs["min"],
                    "max": theirs["max"],
                }
                continue
            if mine["buckets"] != list(theirs["buckets"]):
                raise ValueError(f"histogram {name!r} bucket mismatch")
            mine["counts"] = [
                a + b for a, b in zip(mine["counts"], theirs["counts"])
            ]
            mine["count"] += theirs["count"]
            mine["sum"] = round(mine["sum"] + theirs["sum"], 9)
            for key, pick in (("min", min), ("max", max)):
                if theirs[key] is not None:
                    mine[key] = (
                        theirs[key] if mine[key] is None
                        else pick(mine[key], theirs[key])
                    )
    for blob in histograms.values():
        if blob["count"]:
            minimum = blob["min"] if blob["min"] is not None else 0.0
            maximum = blob["max"] if blob["max"] is not None else math.inf
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                blob[label] = round(
                    histogram_quantile(
                        blob["buckets"], blob["counts"], q,
                        minimum=minimum, maximum=maximum,
                    ),
                    9,
                )
        else:
            blob["p50"] = blob["p95"] = blob["p99"] = None
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }


def _write_json_atomic(path: Path, blob: dict) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(blob))
    os.replace(tmp, path)


class _FleetMetricsView:
    """Worker-side ``/metricz`` aggregator over the metrics directory."""

    def __init__(self, metrics_dir: Path, app: ServingApp) -> None:
        self.metrics_dir = metrics_dir
        self.app = app

    def publish(self) -> dict:
        """Write this worker's registry snapshot; returns it."""
        own = self.app.metrics.as_dict()
        try:
            _write_json_atomic(self.metrics_dir / f"{os.getpid()}.json", own)
        except OSError:
            pass  # metrics publication is best-effort
        return own

    def __call__(self) -> dict:
        own = self.publish()
        snapshots = [own]
        mine = f"{os.getpid()}.json"
        for path in sorted(self.metrics_dir.glob("*.json")):
            if path.name == mine:
                continue
            try:
                snapshots.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue  # sibling mid-replace or just reaped
        return merge_metric_snapshots(snapshots)


# ----------------------------------------------------------------------
# Control-directory reload protocol (worker <-> master)
# ----------------------------------------------------------------------


class _ReloadForwarder:
    """Worker-side ``/v1/reload`` delegate: file-based RPC to the master."""

    def __init__(self, control_dir: Path, timeout_s: float) -> None:
        self.control_dir = control_dir
        self.timeout_s = timeout_s

    def __call__(self, requested: str | None) -> Response:
        request_id = uuid.uuid4().hex
        res_path = self.control_dir / f"res-{request_id}.json"
        _write_json_atomic(
            self.control_dir / f"req-{request_id}.json",
            {"id": request_id, "snapshot": requested, "pid": os.getpid()},
        )
        deadline = time.monotonic() + self.timeout_s
        while time.monotonic() < deadline:
            try:
                blob = json.loads(res_path.read_text())
            except (OSError, ValueError):
                time.sleep(0.05)
                continue
            try:
                res_path.unlink()
            except OSError:
                pass
            body = (json.dumps(blob["payload"]) + "\n").encode("utf-8")
            return Response(blob["status"], body, "application/json")
        body = (
            json.dumps(
                {
                    "error": {
                        "status": 504,
                        "message": "reload coordinator did not respond "
                        f"within {self.timeout_s:g}s",
                    }
                }
            )
            + "\n"
        ).encode("utf-8")
        return Response(504, body, "application/json")


# ----------------------------------------------------------------------
# Worker: asyncio front over the shared socket
# ----------------------------------------------------------------------


async def _serve_connection(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    app: ServingApp,
    pool: ThreadPoolExecutor,
    stop: asyncio.Event | None = None,
) -> None:
    loop = asyncio.get_running_loop()
    try:
        while True:
            try:
                line = await reader.readline()
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not line or line in (b"\r\n", b"\n"):
                return
            try:
                method, target, version = line.decode("latin-1").split()
            except ValueError:
                writer.write(b"HTTP/1.1 400 Bad Request\r\n"
                             b"Content-Length: 0\r\nConnection: close\r\n\r\n")
                await writer.drain()
                return
            headers: dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if not raw or raw in (b"\r\n", b"\n"):
                    break
                name, _, value = raw.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = b""
            length = int(headers.get("content-length") or 0)
            if length:
                body = await reader.readexactly(length)
            split = urlsplit(target)
            params = {k: v[0] for k, v in parse_qs(split.query).items()}
            # The app call runs search/pedigree work; keep the event
            # loop free to parse the next connection meanwhile.  This
            # is also where SingleFlight coalesces duplicate queries.
            response: Response = await loop.run_in_executor(
                pool, app.handle, method, split.path, params, body
            )
            keep_alive = (
                version != "HTTP/1.0"
                and headers.get("connection", "").lower() != "close"
                # A draining worker answers the request it holds, then
                # closes — keep-alive would pin connections it must shed.
                and not (stop is not None and stop.is_set())
            )
            reason = _REASONS.get(response.status, "Unknown")
            head = [
                f"HTTP/1.1 {response.status} {reason}",
                f"Content-Type: {response.content_type}",
                f"Content-Length: {len(response.body)}",
            ]
            head += [f"{k}: {v}" for k, v in response.headers.items()]
            head.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
            writer.write(
                ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                + response.body
            )
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionError, asyncio.IncompleteReadError):
        return  # client went away mid-request
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _worker_serve(
    app: ServingApp,
    sock: socket.socket,
    threads: int,
    publish_interval_s: float = 1.0,
    drain_timeout_s: float = 10.0,
) -> None:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    pool = ThreadPoolExecutor(
        max_workers=threads, thread_name_prefix="snaps-worker"
    )

    async def publish_loop() -> None:
        # Keep this worker's snapshot fresh so whichever sibling the
        # kernel hands the /metricz scrape sees near-live fleet numbers.
        view = app.metrics_view
        while view is not None:
            try:
                view.publish()
            except Exception:  # pragma: no cover - best-effort telemetry
                pass
            await asyncio.sleep(publish_interval_s)

    publisher = asyncio.ensure_future(publish_loop())
    # Python 3.11's Server.wait_closed does not wait for in-flight
    # connection handlers, so track them ourselves: a SIGTERM'd worker
    # must finish the requests it already accepted (a mid-rotation
    # reload response, a search in the executor) before exiting, or
    # clients see dropped connections during a "zero-downtime" swap.
    conns: set[asyncio.Task] = set()

    async def handle(r: asyncio.StreamReader, w: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        conns.add(task)
        try:
            await _serve_connection(r, w, app, pool, stop)
        finally:
            conns.discard(task)

    server = await asyncio.start_server(handle, sock=sock)
    async with server:
        await stop.wait()
        server.close()  # stop accepting; siblings drain the shared queue
    if conns:
        await asyncio.wait(conns, timeout=drain_timeout_s)
    for task in conns:
        task.cancel()
    publisher.cancel()
    pool.shutdown(wait=False, cancel_futures=True)


def _worker_main(
    sock: socket.socket,
    parts,
    serve_config: ServeConfig,
    config: PreforkConfig,
    run_dir: Path,
    store: SnapshotStore,
    slot: int,
    attempt: int,
) -> None:
    """Worker-process entry point (runs after fork, never returns)."""
    status = 0
    try:
        if config.reuse_port:
            # Own socket in the kernel's REUSEPORT balancing group; the
            # master's bound-but-unlistened socket only parks the port.
            own = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            own.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            own.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            own.bind(sock.getsockname())
            own.listen(128)
            sock = own
        app = ServingApp(
            parts.graph,
            serve_config,
            keyword_index=parts.keyword_index,
            sim_index=parts.sim_index,
            store=store,
            manifest=parts.manifest,
        )
        app.reload_delegate = _ReloadForwarder(
            run_dir / CONTROL_DIRNAME, config.reload_timeout_s
        )
        app.metrics_view = _FleetMetricsView(run_dir / METRICS_DIRNAME, app)
        app.metrics.set_gauge("serve.prefork.worker_slot", slot)
        with HeartbeatWriter(
            run_dir / HEARTBEAT_DIRNAME,
            index=slot,
            label=f"serve-worker-{slot}",
            attempt=attempt,
            interval_s=config.heartbeat_interval_s,
        ):
            asyncio.run(
                _worker_serve(
                    app,
                    sock,
                    config.worker_threads,
                    config.metrics_publish_interval_s,
                    config.shutdown_grace_s,
                )
            )
    except BaseException:  # pragma: no cover - crash path
        logger.exception("worker slot %d died", slot)
        status = 1
    finally:
        # Never run the master's atexit/cleanup machinery in a child.
        os._exit(status)


# ----------------------------------------------------------------------
# Master
# ----------------------------------------------------------------------


@dataclass
class _SnapshotParts:
    """Everything a worker needs from one loaded snapshot."""

    graph: object
    keyword_index: object
    sim_index: object
    manifest: object
    memmapped: bool


class _Worker:
    __slots__ = ("pid", "slot", "attempt", "started", "parts")

    def __init__(self, pid, slot, attempt, parts) -> None:
        self.pid = pid
        self.slot = slot
        self.attempt = attempt
        self.started = time.monotonic()
        self.parts = parts


class PreforkMaster:
    """Fork, share, supervise: N serving workers over one snapshot map."""

    def __init__(
        self,
        store: SnapshotStore | str | os.PathLike,
        config: PreforkConfig | None = None,
        serve_config: ServeConfig | None = None,
        snapshot_id: str | None = None,
    ) -> None:
        self.store = (
            store if isinstance(store, SnapshotStore) else SnapshotStore(store)
        )
        self.config = config or PreforkConfig()
        if self.config.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.config.workers}")
        self.serve_config = serve_config or ServeConfig()
        self.snapshot_id = snapshot_id
        self.run_dir = Path(
            self.config.run_dir
            if self.config.run_dir is not None
            else tempfile.mkdtemp(prefix="snaps-prefork-")
        )
        self.metrics = MetricsRegistry()
        self._sock: socket.socket | None = None
        self._parts: _SnapshotParts | None = None
        self._workers: dict[int, _Worker] = {}
        self._stop = False
        self.restarts = 0

    # -- snapshot ------------------------------------------------------

    def _load_parts(self, snapshot_id: str | None) -> _SnapshotParts:
        loaded = self.store.load(
            snapshot_id, artifacts=("graph", "indexes"), memmap=True
        )
        return _SnapshotParts(
            graph=loaded.graph,
            keyword_index=loaded.keyword_index,
            sim_index=loaded.sim_index,
            manifest=loaded.manifest,
            memmapped=loaded.memmapped,
        )

    # -- socket --------------------------------------------------------

    def _bind_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.config.reuse_port:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.serve_config.host, self.serve_config.port))
        if not self.config.reuse_port:
            # Workers inherit this fd; the kernel load-balances accepts.
            sock.listen(128)
        # else: bound but never listening — it only reserves the port;
        # each worker joins the REUSEPORT group with its own socket.
        return sock

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start` binds."""
        assert self._sock is not None
        return self._sock.getsockname()

    # -- worker lifecycle ----------------------------------------------

    def _spawn(self, slot: int, attempt: int, parts: _SnapshotParts) -> _Worker:
        pid = os.fork()
        if pid == 0:
            _worker_main(
                self._sock,
                parts,
                self.serve_config,
                self.config,
                self.run_dir,
                self.store,
                slot,
                attempt,
            )
            raise AssertionError("unreachable")  # pragma: no cover
        worker = _Worker(pid, slot, attempt, parts)
        logger.info(
            "spawned worker slot=%d pid=%d attempt=%d snapshot=%s",
            slot, pid, attempt, parts.manifest.snapshot_id,
        )
        return worker

    def _cleanup_worker_files(self, pid: int) -> None:
        for path in (
            self.run_dir / HEARTBEAT_DIRNAME / f"{pid}.hb",
            self.run_dir / METRICS_DIRNAME / f"{pid}.json",
        ):
            try:
                path.unlink()
            except OSError:
                pass

    def _terminate(self, worker: _Worker, grace_s: float) -> None:
        """SIGTERM, wait up to ``grace_s``, escalate to SIGKILL."""
        for signum, wait_s in (
            (signal.SIGTERM, grace_s),
            (signal.SIGKILL, 2.0),
        ):
            try:
                os.kill(worker.pid, signum)
            except ProcessLookupError:
                pass
            deadline = time.monotonic() + wait_s
            while time.monotonic() < deadline:
                try:
                    pid, _ = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:
                    self._cleanup_worker_files(worker.pid)
                    return
                if pid == worker.pid:
                    self._cleanup_worker_files(worker.pid)
                    return
                time.sleep(0.02)
        logger.error("worker pid %d refused to die", worker.pid)

    def _wait_ready(self, pid: int, timeout_s: float) -> bool:
        """Block until ``pid``'s heartbeat appears (True) or it dies/times
        out (False)."""
        hb = self.run_dir / HEARTBEAT_DIRNAME / f"{pid}.hb"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                dead, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return False
            if dead == pid:
                return False
            if hb.exists():
                return True
            time.sleep(0.02)
        return False

    # -- supervision ---------------------------------------------------

    def _reap(self) -> None:
        while True:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            worker = next(
                (w for w in self._workers.values() if w.pid == pid), None
            )
            self._cleanup_worker_files(pid)
            if worker is None or self._stop:
                continue
            exit_code = os.waitstatus_to_exitcode(status)
            logger.warning(
                "worker slot=%d pid=%d exited (%s); restarting",
                worker.slot, pid, exit_code,
            )
            self.restarts += 1
            self.metrics.inc("serve.prefork.restarts")
            backoff = min(
                worker.attempt * self.config.restart_backoff_s,
                self.config.restart_backoff_max_s,
            )
            if backoff:
                time.sleep(backoff)
            self._workers[worker.slot] = self._spawn(
                worker.slot, worker.attempt + 1, worker.parts
            )

    def _kill_hung(self) -> None:
        now = time.time()
        live = {w.pid for w in self._workers.values()}
        for beat in read_heartbeats(self.run_dir / HEARTBEAT_DIRNAME):
            pid = beat.get("pid")
            if pid not in live:
                continue
            if now - beat["mtime"] > self.config.hang_timeout_s:
                logger.error(
                    "worker pid %d heartbeat stale (%.1fs); killing",
                    pid, now - beat["mtime"],
                )
                self.metrics.inc("serve.prefork.hangs")
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

    # -- reload rotation -----------------------------------------------

    def _handle_reload_request(
        self, requested: str | None, sender_pid: int | None = None
    ) -> tuple[int, dict, list[_Worker]]:
        """Rotate the fleet onto ``requested``.

        Returns ``(status, payload, leftovers)``.  ``leftovers`` are old
        workers whose termination the caller must perform *after* the
        control response is written: the worker that forwarded the
        reload (``sender_pid``) still holds the client's connection, so
        killing it before it can relay our answer would turn the reload
        itself into the one dropped request of the "zero-downtime"
        swap.  That slot is rotated last and its old worker handed back
        instead of terminated.
        """
        previous = self._parts.manifest.snapshot_id
        if requested is not None and requested == previous:
            self.metrics.inc("serve.reloads_noop")
            return 200, {
                "status": "unchanged",
                "snapshot": previous,
                "previous": previous,
                "workers": len(self._workers),
            }, []
        try:
            new_parts = self._load_parts(requested)
        except Exception as error:
            logger.warning("reload load failed: %s", error)
            return 503, {
                "error": {"status": 503, "message": f"snapshot load failed: {error}"}
            }, []
        if new_parts.manifest.snapshot_id == previous:
            self.metrics.inc("serve.reloads_noop")
            return 200, {
                "status": "unchanged",
                "snapshot": previous,
                "previous": previous,
                "workers": len(self._workers),
            }, []
        rotated: list[int] = []
        leftovers: list[_Worker] = []
        slots = sorted(
            self._workers,
            key=lambda s: (self._workers[s].pid == sender_pid, s),
        )
        for slot in slots:
            old = self._workers[slot]
            replacement = self._spawn(slot, 0, new_parts)
            if not self._wait_ready(
                replacement.pid, self.config.rotate_ready_timeout_s
            ):
                # Canary (or mid-fleet) failure: the new snapshot does
                # not come up.  Nothing on this slot was terminated yet;
                # roll the already-rotated slots back to the old parts.
                logger.error(
                    "replacement worker for slot %d failed readiness; "
                    "rolling back to snapshot %s", slot, previous,
                )
                self._terminate(replacement, 0.5)
                for back_slot in rotated:
                    current = self._workers[back_slot]
                    restored = self._spawn(back_slot, 0, self._parts)
                    if self._wait_ready(
                        restored.pid, self.config.rotate_ready_timeout_s
                    ):
                        self._terminate(
                            current, self.config.shutdown_grace_s
                        )
                        self._workers[back_slot] = restored
                    else:  # pragma: no cover - double fault
                        self._terminate(restored, 0.5)
                self.metrics.inc("serve.prefork.reload_rollbacks")
                return 503, {
                    "error": {
                        "status": 503,
                        "message": (
                            f"snapshot {new_parts.manifest.snapshot_id} "
                            "failed worker readiness; fleet rolled back "
                            f"to {previous}"
                        ),
                    }
                }, []
            if old.pid == sender_pid:
                leftovers.append(old)
            else:
                self._terminate(old, self.config.shutdown_grace_s)
            self._workers[slot] = replacement
            rotated.append(slot)
        self._parts = new_parts
        self.metrics.inc("serve.reloads")
        logger.info(
            "rotated %d workers onto snapshot %s (was %s)",
            len(rotated), new_parts.manifest.snapshot_id, previous,
        )
        return 200, {
            "status": "reloaded",
            "snapshot": new_parts.manifest.snapshot_id,
            "previous": previous,
            "workers": len(self._workers),
            "entities": len(new_parts.graph),
            "edges": new_parts.graph.n_edges(),
        }, leftovers

    def _serve_control(self) -> None:
        control = self.run_dir / CONTROL_DIRNAME
        for req_path in sorted(control.glob("req-*.json")):
            try:
                request = json.loads(req_path.read_text())
            except (OSError, ValueError):
                continue  # writer mid-replace; next tick
            try:
                req_path.unlink()
            except OSError:
                pass
            status, payload, leftovers = self._handle_reload_request(
                request.get("snapshot"), request.get("pid")
            )
            _write_json_atomic(
                control / f"res-{request['id']}.json",
                {"status": status, "payload": payload},
            )
            # Only now retire the worker that forwarded this request:
            # it reads the response file and relays it over the client
            # connection while draining under SIGTERM.
            for old in leftovers:
                self._terminate(old, self.config.shutdown_grace_s)

    def _publish_metrics(self) -> None:
        self.metrics.set_gauge("serve.prefork.workers", len(self._workers))
        total_private = 0
        for worker in self._workers.values():
            private = proc_private_bytes(worker.pid)
            if private is not None:
                total_private += private
        self.metrics.set_gauge(
            "serve.prefork.worker_private_bytes", total_private
        )
        try:
            _write_json_atomic(
                self.run_dir / METRICS_DIRNAME / "master.json",
                self.metrics.as_dict(),
            )
        except OSError:
            pass

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Bind, map, fork, supervise.  Blocks until SIGTERM/SIGINT (or
        :meth:`stop` from another thread)."""
        for sub in (CONTROL_DIRNAME, METRICS_DIRNAME, HEARTBEAT_DIRNAME):
            (self.run_dir / sub).mkdir(parents=True, exist_ok=True)
        clear_heartbeats(self.run_dir / HEARTBEAT_DIRNAME)
        self._sock = self._bind_socket()
        # Port discovery for harnesses that bind port 0.
        host, port = self.address
        _write_json_atomic(
            self.run_dir / "address.json", {"host": host, "port": port}
        )
        self._parts = self._load_parts(self.snapshot_id)
        if not self._parts.memmapped:
            logger.warning(
                "snapshot %s predates the raw artefact tier; workers "
                "each hold private index copies (re-save to enable "
                "page sharing)", self._parts.manifest.snapshot_id,
            )
        # Freeze the pre-fork heap: without this, the first GC pass in
        # any worker touches every object header and un-shares the
        # copy-on-write pages the whole design exists to share.
        gc.freeze()
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_signal)
        for slot in range(self.config.workers):
            self._workers[slot] = self._spawn(slot, 0, self._parts)
        logger.info(
            "prefork master up: %d workers on %s:%d (snapshot %s, %s)",
            len(self._workers), *self.address,
            self._parts.manifest.snapshot_id,
            "memmap" if self._parts.memmapped else "eager",
        )
        try:
            while not self._stop:
                self._reap()
                self._kill_hung()
                self._serve_control()
                self._publish_metrics()
                time.sleep(self.config.poll_interval_s)
        finally:
            self._shutdown()

    def _handle_signal(self, signum, frame) -> None:  # pragma: no cover
        self._stop = True

    def stop(self) -> None:
        """Request a graceful fleet shutdown (thread/signal safe)."""
        self._stop = True

    def _shutdown(self) -> None:
        self._stop = True
        for worker in self._workers.values():
            try:
                os.kill(worker.pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + self.config.shutdown_grace_s
        pending = {w.pid for w in self._workers.values()}
        while pending and time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                pending.clear()
                break
            if pid:
                pending.discard(pid)
            else:
                time.sleep(0.02)
        for pid in pending:
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
        self._workers.clear()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        logger.info("prefork master shut down")
