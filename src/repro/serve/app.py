"""The serving application: routes, HTTP plumbing, telemetry.

SNAPS's online phase (paper Section 7, Figure 5) is a web form backed by
the keyword index ``K`` and similarity index ``S``.  :class:`ServingApp`
is that deployment shape: it loads a resolved pedigree graph **once**,
builds the :class:`~repro.query.engine.QueryEngine` indexes **once**,
and then answers concurrent JSON requests forever — in contrast to the
``repro query`` CLI which pays the full index build on every invocation.

The app is deliberately split from the HTTP server: ``handle()`` maps a
``(method, path, params, body)`` tuple to a :class:`Response`, so route
logic is unit-testable without sockets, and the thin
``BaseHTTPRequestHandler`` adapter only does wire I/O.  Endpoints:

* ``POST /v1/search`` — ranked matches for a JSON query body;
* ``GET /v1/pedigree/<id>?generations=N&format=json|ascii|dot|gedcom``;
* ``POST /v1/reload`` — re-load graph + indexes from the attached
  snapshot store (bounded retries, atomic engine swap);
* ``GET /healthz`` — ``ok | degraded | failing`` + breaker states;
* ``GET /metricz`` — the :class:`~repro.obs.metrics.MetricsRegistry`
  rendered as text (or JSON with ``?format=json``).

Every request runs under its own :class:`~repro.obs.trace.Trace` (the
span stack is not shareable across threads), emits a per-endpoint
latency histogram, and expensive endpoints pass through the
:class:`~repro.serve.admission.AdmissionController`.

**Degraded mode** (``repro.faults``): search, pedigree extraction, and
snapshot reload each run behind a :class:`~repro.faults.CircuitBreaker`.
When a backend fails — or its circuit is already open — the app serves
the last good answer from the result cache (kept past its TTL via
``keep_stale``) with a ``Warning: 110`` header and an
``X-Snaps-Stale-Age`` header, falling back to ``503`` + ``Retry-After``
only when nothing cached exists.  After ``breaker_reset_s`` the breaker
half-opens and lets one live probe through; a success closes it and
``/healthz`` returns to ``ok``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import ExitStack
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.faults import (
    CLOSED,
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    classify,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.prom import process_gauges, render_prometheus
from repro.obs.report import build_report, render_report
from repro.obs.trace import Trace
from repro.pedigree import extract_pedigree
from repro.pedigree.gedcom import render_gedcom
from repro.pedigree.graph import PedigreeGraph
from repro.pedigree.visualize import render_ascii_tree, render_dot
from repro.query import QueryEngine
from repro.serve.admission import AdmissionController, Deadline, Rejected
from repro.serve.cache import MISS, LRUTTLCache, query_cache_key
from repro.serve.coalesce import SingleFlight
from repro.serve.serialization import (
    pedigree_payload,
    query_from_mapping,
    search_payload,
)
from repro.serve.slo import SloMonitor, SloObjectives

__all__ = ["Response", "ServeConfig", "ServeHTTPServer", "ServingApp", "make_server"]

logger = get_logger("serve.app")

MAX_GENERATIONS = 10
_PEDIGREE_FORMATS = ("json", "ascii", "dot", "gedcom")


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of one serving process (the ``repro serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8080
    cache_size: int = 256
    cache_ttl_s: float | None = 300.0
    max_concurrency: int = 8
    max_pending: int = 32
    queue_timeout_s: float = 1.0
    request_timeout_s: float | None = 5.0
    similarity_threshold: float = 0.5
    use_geographic_distance: bool = False
    # Keep per-request span trees in ``ServingApp.recent_traces``.
    tracing: bool = True
    # Degraded mode: consecutive failures that open a circuit, seconds
    # before a half-open recovery probe, and the bounded-retry policy
    # around snapshot store reads.
    breaker_threshold: int = 3
    breaker_reset_s: float = 30.0
    retry_attempts: int = 3
    retry_base_delay_s: float = 0.05
    # SLO objectives tracked by the rolling-window monitor (see
    # repro.serve.slo): availability and latency-within-deadline targets
    # over a sliding window, surfaced on /healthz and /metricz.
    slo_availability: float = 0.999
    slo_latency_target: float = 0.99
    slo_deadline_s: float = 0.5
    slo_window_s: float = 300.0


@dataclass
class Response:
    """One materialised HTTP response, transport-independent."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    def json(self) -> dict:
        """Decode the body back to JSON (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


def _json_response(status: int, payload: dict, headers: dict | None = None) -> Response:
    body = (json.dumps(payload, sort_keys=False) + "\n").encode("utf-8")
    return Response(status, body, "application/json", dict(headers or {}))


def _error_response(status: int, message: str, headers: dict | None = None) -> Response:
    return _json_response(
        status, {"error": {"status": status, "message": message}}, headers
    )


def _text_response(status: int, text: str) -> Response:
    return Response(status, text.encode("utf-8"), "text/plain; charset=utf-8")


class ServingApp:
    """Route dispatch over one loaded pedigree graph."""

    def __init__(
        self,
        graph: PedigreeGraph,
        config: ServeConfig | None = None,
        metrics: MetricsRegistry | None = None,
        keyword_index=None,
        sim_index=None,
        store=None,
        manifest=None,
        clock=time.monotonic,
        sleep=time.sleep,
    ) -> None:
        """``keyword_index``/``sim_index`` (from a ``repro.store``
        snapshot) warm-start the engine so boot skips index construction
        entirely; both default to building from ``graph``.  ``store`` is
        an optional :class:`~repro.store.SnapshotStore` backing
        ``POST /v1/reload``; ``manifest`` identifies the loaded snapshot
        on ``/metricz`` (id + age gauges); ``clock``/``sleep`` are
        injectable so chaos tests drive breaker recovery and retry
        backoff without waiting.
        """
        self.config = config or ServeConfig()
        self.graph = graph
        self.store = store
        self.manifest = manifest
        self._clock = clock
        self._sleep = sleep
        # /metricz needs a real registry, so unlike the offline pipeline
        # telemetry here is always on (it is thread-safe and cheap).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # The engine's indexes are read-only after this build (see the
        # thread-safety notes in repro.index); the engine gets no Trace
        # because one span stack cannot be shared across request threads.
        self.engine = QueryEngine(
            graph,
            similarity_threshold=self.config.similarity_threshold,
            use_geographic_distance=self.config.use_geographic_distance,
            metrics=self.metrics,
            keyword_index=keyword_index,
            sim_index=sim_index,
        )
        # keep_stale: expired entries stay recoverable for degraded mode.
        # The cache is bound to the serving snapshot's id so entries
        # inherited across fork from a process serving a *different*
        # snapshot can never come back as fresh hits (see LRUTTLCache).
        self.cache = LRUTTLCache(
            max_size=self.config.cache_size,
            ttl_s=self.config.cache_ttl_s,
            metrics=self.metrics,
            clock=clock,
            keep_stale=True,
            token=(
                str(manifest.snapshot_id) if manifest is not None else None
            ),
        )
        # Burst deduplication: identical in-flight searches share one
        # backend computation (the result cache only helps *after* the
        # first answer lands).
        self.flights = SingleFlight(metrics=self.metrics)
        self.gate = AdmissionController(
            max_concurrency=self.config.max_concurrency,
            max_pending=self.config.max_pending,
            queue_timeout_s=self.config.queue_timeout_s,
            metrics=self.metrics,
        )
        self.breakers = {
            name: CircuitBreaker(
                name,
                failure_threshold=self.config.breaker_threshold,
                reset_timeout_s=self.config.breaker_reset_s,
                clock=clock,
                metrics=self.metrics,
            )
            for name in ("search", "pedigree", "reload")
        }
        self.slo = SloMonitor(
            SloObjectives(
                availability=self.config.slo_availability,
                latency_target=self.config.slo_latency_target,
                latency_deadline_s=self.config.slo_deadline_s,
                window_s=self.config.slo_window_s,
            ),
            clock=clock,
            metrics=self.metrics,
        )
        self._reload_lock = threading.Lock()
        # Pre-fork deployment hooks (see repro.serve.prefork).  A worker
        # process cannot swap the whole fleet's snapshot by itself, so
        # when set, /v1/reload forwards to the master via this delegate;
        # /metricz renders the fleet-merged view from ``metrics_view``.
        self.reload_delegate = None
        self.metrics_view = None
        self.started_at = clock()
        # Last few request span trees, for debugging and tests.
        self.recent_traces: deque[Trace] = deque(maxlen=32)
        self._traces_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: dict[str, str] | None = None,
        body: bytes | None = None,
    ) -> Response:
        """Answer one request; never raises (errors become responses)."""
        params = params or {}
        endpoint, error = self._route(method, path)
        if error is not None:
            self.metrics.inc("serve.requests")
            self._count_status(error.status)
            return error
        trace = Trace() if self.config.tracing else Trace.disabled()
        start = time.perf_counter()
        try:
            with trace.span(f"serve.{endpoint}"):
                if endpoint == "healthz":
                    response = self._handle_healthz()
                elif endpoint == "metricz":
                    response = self._handle_metricz(params)
                elif endpoint == "search":
                    response = self._handle_search(body, trace)
                elif endpoint == "reload":
                    response = self._handle_reload(body)
                else:
                    response = self._handle_pedigree(path, params, trace)
        except Exception:  # pragma: no cover - defensive: bugs become 500s
            logger.exception("unhandled error serving %s %s", method, path)
            response = _error_response(500, "internal server error")
        elapsed = time.perf_counter() - start
        self.metrics.inc("serve.requests")
        self._count_status(response.status)
        self.metrics.observe(
            f"serve.{endpoint}.latency_seconds", elapsed, LATENCY_BUCKETS_S
        )
        # The latency objective covers the read paths; probes and admin
        # endpoints count toward availability only.  Health transitions
        # (breaker opens/closes) become SLO events here, so degraded-mode
        # entry/exit is visible in /metricz without log archaeology.
        self.slo.record(
            endpoint,
            response.status,
            elapsed,
            latency_eligible=endpoint in ("search", "pedigree"),
        )
        self.slo.note_health(self._health_state()[0])
        if trace.enabled:
            with self._traces_lock:
                self.recent_traces.append(trace)
        return response

    def _route(self, method: str, path: str) -> tuple[str, Response | None]:
        """(endpoint name, error response or None) for a request line."""
        if path == "/healthz":
            endpoint = "healthz"
        elif path == "/metricz":
            endpoint = "metricz"
        elif path == "/v1/search":
            endpoint = "search"
        elif path == "/v1/reload":
            endpoint = "reload"
        elif path.startswith("/v1/pedigree/"):
            endpoint = "pedigree"
        else:
            return "", _error_response(404, f"unknown path: {path}")
        wanted = "POST" if endpoint in ("search", "reload") else "GET"
        if method != wanted:
            return endpoint, _error_response(
                405, f"{endpoint} requires {wanted}", {"Allow": wanted}
            )
        return endpoint, None

    def _count_status(self, status: int) -> None:
        self.metrics.inc(f"serve.responses.{status // 100}xx")

    @staticmethod
    def _rejected(rejected: Rejected) -> Response:
        return _error_response(
            rejected.status,
            rejected.reason,
            {"Retry-After": str(max(1, round(rejected.retry_after_s)))},
        )

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------

    @staticmethod
    def _stale_headers(age_s: float) -> dict[str, str]:
        # RFC 7234 warn-code 110 ("Response is stale").
        return {
            "Warning": '110 snaps-serve "Response is stale"',
            "X-Snaps-Stale-Age": str(round(age_s, 3)),
        }

    def _breaker_unavailable(
        self, breaker: CircuitBreaker, message: str
    ) -> Response:
        return _error_response(
            503,
            message,
            {"Retry-After": str(max(1, round(breaker.retry_after_s())))},
        )

    def _stale_search(self, key) -> Response | None:
        """The last good answer for ``key`` with staleness headers."""
        stale = self.cache.get_stale(key)
        if stale is MISS:
            return None
        value, age_s = stale
        self.metrics.inc("serve.degraded.stale_served")
        return _json_response(
            200,
            {**value, "cached": True, "stale": True},
            self._stale_headers(age_s),
        )

    def _stale_pedigree(self, key) -> Response | None:
        stale = self.cache.get_stale(key)
        if stale is MISS:
            return None
        (kind, payload), age_s = stale
        self.metrics.inc("serve.degraded.stale_served")
        headers = self._stale_headers(age_s)
        if kind == "json":
            return _json_response(200, {**payload, "stale": True}, headers)
        response = _text_response(200, payload)
        response.headers.update(headers)
        return response

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _health_state(self) -> tuple[str, dict]:
        """(ok | degraded | failing, per-breaker detail) right now."""
        breakers = {
            name: {
                "state": breaker.state,
                "retry_after_s": round(breaker.retry_after_s(), 3),
            }
            for name, breaker in self.breakers.items()
        }
        states = {name: info["state"] for name, info in breakers.items()}
        if all(state == CLOSED for state in states.values()):
            status = "ok"
        elif states["search"] == OPEN and states["pedigree"] == OPEN:
            # Both read paths refusing work: this replica is useless.
            status = "failing"
        else:
            status = "degraded"
        return status, breakers

    def _handle_healthz(self) -> Response:
        status, breakers = self._health_state()
        return _json_response(
            200 if status != "failing" else 503,
            {
                "status": status,
                "entities": len(self.graph),
                "edges": self.graph.n_edges(),
                "uptime_s": round(self._clock() - self.started_at, 3),
                "breakers": breakers,
                "slo": self.slo.snapshot(),
            },
        )

    def _snapshot_age_s(self) -> float | None:
        if self.manifest is None:
            return None
        try:
            from datetime import datetime, timezone

            created = datetime.fromisoformat(self.manifest.created_at)
            return (datetime.now(timezone.utc) - created).total_seconds()
        except (TypeError, ValueError, AttributeError):
            return None

    def _handle_metricz(self, params: dict[str, str]) -> Response:
        stats = self.cache.stats()
        self.metrics.set_gauge("serve.cache.size", stats["size"])
        self.metrics.set_gauge(
            "serve.uptime_seconds", self._clock() - self.started_at
        )
        for name, value in process_gauges().items():
            self.metrics.set_gauge(name, value)
        self.slo.publish(self.metrics)
        age_s = self._snapshot_age_s()
        if age_s is not None:
            self.metrics.set_gauge("serve.snapshot.age_seconds", age_s)
        # In a pre-fork fleet the machine-readable formats render the
        # fleet-merged view (every worker's counters summed, histograms
        # merged); single-process serving renders its own registry.
        view = (
            self.metrics_view() if self.metrics_view is not None
            else self.metrics.as_dict()
        )
        if params.get("format") == "prom":
            info = {"service": "snaps-serve"}
            if self.manifest is not None:
                info["snapshot_id"] = str(self.manifest.snapshot_id)
            return _text_response(200, render_prometheus(view, info=info))
        if params.get("format") == "json":
            return _json_response(200, view)
        report = build_report(metrics=self.metrics, meta={"kind": "serve"})
        return _text_response(200, render_report(report))

    def _handle_search(self, body: bytes | None, trace: Trace) -> Response:
        try:
            payload = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return _error_response(400, f"request body is not valid JSON: {error}")
        try:
            query, top_m = query_from_mapping(payload)
        except ValueError as error:
            return _error_response(400, str(error))
        key = query_cache_key(query, top_m)
        with trace.span("cache_lookup"):
            cached = self.cache.get(key)
        if cached is not MISS:
            return _json_response(200, {**cached, "cached": True})
        # Coalesce the miss path: concurrent identical queries share the
        # leader's computation (and its Response — built fresh per
        # flight, treated as read-only by the transport).
        return self.flights.do(
            key, lambda: self._search_miss(key, query, top_m, trace)
        )

    def _search_miss(self, key, query, top_m: int, trace: Trace) -> Response:
        breaker = self.breakers["search"]
        if not breaker.allow():
            # Open circuit: don't touch the backend at all.
            return self._stale_search(key) or self._breaker_unavailable(
                breaker, "search backend unavailable (circuit open)"
            )
        deadline = Deadline.after(self.config.request_timeout_s)
        with ExitStack() as held:
            try:
                # The admission span covers only the queue wait; the
                # slot itself is held until the search finishes.
                with trace.span("admission"):
                    held.enter_context(self.gate.admit(deadline))
            except Rejected as rejected:
                # Load shedding is not a backend fault: the breaker
                # must not open under a traffic spike.
                return self._rejected(rejected)
            with trace.span("search"):
                try:
                    hits = self.engine.search(query, top_m=top_m)
                except Exception as error:
                    breaker.record_failure(error)
                    logger.warning(
                        "search backend failure (%s): %s",
                        classify(error), error,
                    )
                    return self._stale_search(key) or self._breaker_unavailable(
                        breaker, f"search backend failing: {error}"
                    )
        breaker.record_success()
        with trace.span("serialize"):
            result = search_payload(hits)
        self.cache.put(key, result)
        return _json_response(200, {**result, "cached": False})

    def _handle_pedigree(
        self, path: str, params: dict[str, str], trace: Trace
    ) -> Response:
        raw_id = path[len("/v1/pedigree/"):]
        try:
            entity_id = int(raw_id)
        except ValueError:
            return _error_response(400, f"entity id must be an integer, got {raw_id!r}")
        try:
            generations = int(params.get("generations", "2"))
        except ValueError:
            return _error_response(400, "generations must be an integer")
        if not 0 <= generations <= MAX_GENERATIONS:
            return _error_response(
                400, f"generations must be in [0, {MAX_GENERATIONS}]"
            )
        fmt = params.get("format", "json")
        if fmt not in _PEDIGREE_FORMATS:
            return _error_response(
                400, f"format must be one of {', '.join(_PEDIGREE_FORMATS)}"
            )
        breaker = self.breakers["pedigree"]
        key = ("pedigree", entity_id, generations, fmt)
        if not breaker.allow():
            return self._stale_pedigree(key) or self._breaker_unavailable(
                breaker, "pedigree backend unavailable (circuit open)"
            )
        deadline = Deadline.after(self.config.request_timeout_s)
        with ExitStack() as held:
            try:
                with trace.span("admission"):
                    held.enter_context(self.gate.admit(deadline))
            except Rejected as rejected:
                return self._rejected(rejected)
            with trace.span("extract"):
                try:
                    pedigree = extract_pedigree(self.graph, entity_id, generations)
                except KeyError:
                    # The backend worked; the entity just doesn't exist.
                    breaker.record_success()
                    return _error_response(404, f"unknown entity id: {entity_id}")
                except Exception as error:
                    breaker.record_failure(error)
                    logger.warning(
                        "pedigree backend failure (%s): %s",
                        classify(error), error,
                    )
                    return self._stale_pedigree(key) or self._breaker_unavailable(
                        breaker, f"pedigree backend failing: {error}"
                    )
            breaker.record_success()
            with trace.span("serialize"):
                if fmt == "json":
                    payload = pedigree_payload(pedigree)
                    self.cache.put(key, ("json", payload))
                    return _json_response(200, payload)
                if fmt == "dot":
                    text = render_dot(pedigree)
                elif fmt == "gedcom":
                    text = render_gedcom(pedigree)
                else:
                    text = render_ascii_tree(pedigree)
                self.cache.put(key, ("text", text))
                return _text_response(200, text)

    def _handle_reload(self, body: bytes | None = None) -> Response:
        """Swap in a snapshot's graph + indexes, atomically.

        The optional JSON body ``{"snapshot": "<id>"}`` names the exact
        snapshot to load (promotion and rollback target a specific id);
        without it the store's HEAD is loaded.  Re-requesting the
        snapshot already being served is an idempotent no-op — a crashed
        promoter can re-send its promotion safely.  Store reads get
        bounded retries with exponential backoff (only transient faults
        retry — a corrupt snapshot fails immediately); repeated failures
        open the ``reload`` breaker so callers back off while the old
        graph keeps serving.  A successful swap bumps the result-cache
        epoch, so answers computed from the predecessor snapshot can
        only resurface through the explicit ``Warning: 110`` stale path.
        """
        if self.store is None and self.reload_delegate is None:
            return _error_response(
                409, "no snapshot store attached; start with --snapshot"
            )
        requested: str | None = None
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return _error_response(
                    400, f"reload body is not valid JSON: {error}"
                )
            if payload is not None:
                if not isinstance(payload, dict) or (
                    payload.get("snapshot") is not None
                    and not isinstance(payload["snapshot"], str)
                ):
                    return _error_response(
                        400, 'reload body must be {"snapshot": "<id>"}'
                    )
                requested = payload.get("snapshot")
        if self.reload_delegate is not None:
            # Pre-fork worker: one process cannot swap the fleet.  The
            # delegate forwards the request to the master, which maps
            # the new snapshot and rotates every worker through it.
            return self.reload_delegate(requested)
        previous = (
            self.manifest.snapshot_id if self.manifest is not None else None
        )
        if requested is not None and requested == previous:
            self.metrics.inc("serve.reloads_noop")
            return _json_response(
                200,
                {
                    "status": "unchanged",
                    "snapshot": previous,
                    "previous": previous,
                    "entities": len(self.graph),
                    "edges": self.graph.n_edges(),
                },
            )
        breaker = self.breakers["reload"]
        if not breaker.allow():
            return self._breaker_unavailable(
                breaker, "snapshot reload circuit is open"
            )
        policy = RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            sleep=self._sleep,
        )
        try:
            loaded = policy.call(
                lambda: self.store.load(requested, artifacts=("graph", "indexes"))
            )
        except Exception as error:
            breaker.record_failure(error)
            logger.warning(
                "snapshot reload failed (%s): %s", classify(error), error
            )
            return self._breaker_unavailable(
                breaker, f"snapshot reload failed: {error}"
            )
        breaker.record_success()
        engine = QueryEngine(
            loaded.graph,
            similarity_threshold=self.config.similarity_threshold,
            use_geographic_distance=self.config.use_geographic_distance,
            metrics=self.metrics,
            keyword_index=loaded.keyword_index,
            sim_index=loaded.sim_index,
        )
        with self._reload_lock:
            self.graph = loaded.graph
            self.engine = engine
            self.manifest = loaded.manifest
            # Results computed from the predecessor must not come back
            # as fresh hits; degraded mode can still reach them via
            # get_stale (Warning: 110).  Rebinding to the new snapshot's
            # id both bumps the epoch locally and marks the entries so
            # any process that later fork-inherits them refuses them too.
            self.cache.rebind(str(loaded.manifest.snapshot_id))
        self.metrics.inc("serve.reloads")
        logger.info(
            "reloaded snapshot %s (%d entities)",
            loaded.manifest.snapshot_id, len(loaded.graph),
        )
        return _json_response(
            200,
            {
                "status": "reloaded",
                "snapshot": loaded.manifest.snapshot_id,
                "previous": previous,
                "entities": len(loaded.graph),
                "edges": loaded.graph.n_edges(),
            },
        )


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """Wire adapter: parse the request line, delegate to the app."""

    server_version = "snaps-serve/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        params = {k: v[0] for k, v in parse_qs(split.query).items()}
        body: bytes | None = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
        app: ServingApp = self.server.app  # type: ignore[attr-defined]
        response = app.handle(method, split.path, params, body)
        try:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(response.body)))
            for name, value in response.headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            logger.debug("client dropped connection on %s %s", method, self.path)

    def log_message(self, format: str, *args) -> None:
        # Route http.server's per-request stderr chatter through -v logging.
        logger.debug("%s %s", self.address_string(), format % args)


class ServeHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServingApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServingApp) -> None:
        super().__init__(address, _RequestHandler)
        self.app = app


def make_server(app: ServingApp, host: str = "127.0.0.1", port: int = 0) -> ServeHTTPServer:
    """Bind (but don't start) a server; ``port=0`` picks an ephemeral port.

    Call ``serve_forever()`` (typically on a thread) to start answering,
    and ``shutdown()`` + ``server_close()`` to stop.
    """
    return ServeHTTPServer((host, port), app)
