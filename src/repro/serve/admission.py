"""Admission control: a bounded concurrency gate with deadlines.

A ``ThreadingHTTPServer`` spawns one thread per connection, so without a
gate a traffic burst turns into an unbounded pile of concurrent searches
all thrashing the same indexes.  The controller enforces two limits:

* at most ``max_concurrency`` requests *executing* at once (a semaphore);
* at most ``max_pending`` further requests *waiting* for a slot — anyone
  beyond that is rejected immediately with HTTP 429, and a waiter that
  cannot get a slot within ``queue_timeout_s`` is rejected with 503.

Both rejections carry a ``Retry-After`` hint so well-behaved clients
back off instead of hammering.  :class:`Deadline` tracks the per-request
time budget: a request that spent its budget queueing is shed *before*
doing any search work (better to fail fast than to return an answer the
client already gave up on).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = ["AdmissionController", "Deadline", "Rejected"]


class Rejected(Exception):
    """Raised when the gate sheds a request instead of admitting it."""

    def __init__(self, status: int, retry_after_s: float, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.retry_after_s = retry_after_s
        self.reason = reason


class Deadline:
    """A monotonic point in time a request must finish by."""

    __slots__ = ("_expires_at", "_clock")

    def __init__(self, expires_at: float | None, clock=time.monotonic) -> None:
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float | None, clock=time.monotonic) -> "Deadline":
        """A deadline ``seconds`` from now; ``None`` never expires."""
        if seconds is None:
            return cls(None, clock)
        return cls(clock() + seconds, clock)

    def remaining(self) -> float:
        """Seconds left (``math.inf`` for a deadline-less request)."""
        if self._expires_at is None:
            return math.inf
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


class AdmissionController:
    """Semaphore + bounded pending queue in front of the query engine."""

    def __init__(
        self,
        max_concurrency: int = 8,
        max_pending: int = 32,
        queue_timeout_s: float = 1.0,
        metrics: Any = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.max_concurrency = max_concurrency
        self.max_pending = max_pending
        self.queue_timeout_s = queue_timeout_s
        self._metrics = metrics
        self._slots = threading.Semaphore(max_concurrency)
        self._pending = 0
        self._lock = threading.Lock()

    def _count(self, what: str) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"serve.admission.{what}")

    @property
    def pending(self) -> int:
        """Requests currently waiting for (or about to take) a slot."""
        with self._lock:
            return self._pending

    def _retry_after(self, depth: int) -> float:
        # A queue-length-scaled hint: an empty queue drains within one
        # timeout; a full one takes proportionally longer.  ``depth`` is
        # passed in because callers may already hold ``_lock``.
        return max(1.0, self.queue_timeout_s * (1 + depth))

    @contextmanager
    def admit(self, deadline: Deadline | None = None) -> Iterator[None]:
        """Context manager holding one execution slot for its body.

        Raises :class:`Rejected` (never blocks unboundedly) when the
        pending queue is full, the queue wait times out, or ``deadline``
        expired while queueing.
        """
        acquired = self._slots.acquire(blocking=False)
        if not acquired:
            # All slots busy: join the bounded pending queue (or shed).
            with self._lock:
                if self._pending >= self.max_pending:
                    self._count("rejected_queue_full")
                    raise Rejected(
                        429, self._retry_after(self._pending), "pending queue full"
                    )
                self._pending += 1
            timeout = self.queue_timeout_s
            if deadline is not None:
                timeout = min(timeout, max(0.0, deadline.remaining()))
            acquired = self._slots.acquire(timeout=timeout)
            with self._lock:
                self._pending -= 1
                depth = self._pending
            if not acquired:
                self._count("rejected_timeout")
                raise Rejected(
                    503, self._retry_after(depth), "no execution slot in time"
                )
        if deadline is not None and deadline.expired():
            self._slots.release()
            self._count("rejected_deadline")
            raise Rejected(
                503, self._retry_after(self.pending), "deadline expired while queued"
            )
        self._count("admitted")
        try:
            yield
        finally:
            self._slots.release()
