"""Rolling-window SLO tracking for the serving tier.

A service-level objective gives the serving tier a yes/no answer to "is
this replica healthy *as experienced by callers*", where breaker states
only say whether backends are failing.  :class:`SloMonitor` tracks two
objectives over a rolling window (default five minutes):

* **availability** — the fraction of requests answered without a server
  error (5xx), target e.g. 99.9%;
* **latency** — the fraction of read requests answered within a
  deadline, target e.g. 99% under 500 ms.

Each is summarised as a **burn rate**: observed bad fraction divided by
the objective's error budget (``1 - objective``).  Burn rate 1.0 means
the replica is consuming budget exactly as fast as the objective
allows; above 1.0 the objective will be violated if the window is
representative.  Burn rates are the standard paging signal because they
are dimensionless and comparable across objectives.

The window is a ring of time buckets (width = window/buckets); a bucket
is lazily reset when the clock wraps onto it, so recording is O(1) and
no background thread is needed.  The monitor shares the app's
injectable clock, which lets the chaos suite replay breaker trips and
recovery and watch SLO events fire deterministically.

Degraded-mode transitions (breaker opens, stale serving) are reported
by the app via :meth:`note_health`; every state change is kept as an
SLO *event* (bounded deque) and counted on ``serve.slo.events`` — so
"when did this replica degrade and recover" is a metrics query, not a
log grep.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry

__all__ = ["SloObjectives", "SloMonitor"]


@dataclass(frozen=True)
class SloObjectives:
    """The targets one serving replica is held to."""

    availability: float = 0.999
    latency_target: float = 0.99
    latency_deadline_s: float = 0.5
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability < 1.0:
            raise ValueError("availability objective must be in (0, 1)")
        if not 0.0 < self.latency_target < 1.0:
            raise ValueError("latency target must be in (0, 1)")
        if self.latency_deadline_s <= 0 or self.window_s <= 0:
            raise ValueError("deadline and window must be positive")


class _Bucket:
    __slots__ = ("index", "requests", "errors", "in_deadline", "latency_eligible")

    def __init__(self) -> None:
        self.reset(-1)

    def reset(self, index: int) -> None:
        self.index = index
        self.requests = 0
        self.errors = 0
        self.in_deadline = 0
        self.latency_eligible = 0


class SloMonitor:
    """Tracks availability/latency objectives over a rolling window."""

    def __init__(
        self,
        objectives: SloObjectives | None = None,
        clock=time.monotonic,
        metrics: MetricsRegistry | None = None,
        buckets: int = 30,
    ) -> None:
        if buckets < 2:
            raise ValueError("need at least 2 window buckets")
        self.objectives = objectives or SloObjectives()
        self._clock = clock
        self._metrics = metrics
        self._width = self.objectives.window_s / buckets
        self._ring = [_Bucket() for _ in range(buckets)]
        self._lock = threading.Lock()
        self._health = "ok"
        self.events: deque[dict] = deque(maxlen=64)
        self._availability_burning = False
        self._latency_burning = False

    # -- recording ------------------------------------------------------

    def _bucket(self, now: float) -> _Bucket:
        index = int(now / self._width)
        bucket = self._ring[index % len(self._ring)]
        if bucket.index != index:
            bucket.reset(index)
        return bucket

    def record(
        self, endpoint: str, status: int, latency_s: float, latency_eligible: bool = True
    ) -> None:
        """Record one answered request.

        ``latency_eligible`` excludes endpoints the latency objective
        does not cover (health/metrics probes); availability always
        counts.
        """
        now = self._clock()
        with self._lock:
            bucket = self._bucket(now)
            bucket.requests += 1
            if status >= 500:
                bucket.errors += 1
            if latency_eligible:
                bucket.latency_eligible += 1
                if latency_s <= self.objectives.latency_deadline_s:
                    bucket.in_deadline += 1
            self._check_burn(now)

    def note_health(self, state: str) -> None:
        """Record the app's health state; transitions become SLO events."""
        with self._lock:
            if state == self._health:
                return
            previous, self._health = self._health, state
            self._event("health", now=self._clock(), from_=previous, to=state)

    # -- derivation -----------------------------------------------------

    def _window_totals(self, now: float) -> tuple[int, int, int, int]:
        """(requests, errors, latency_eligible, in_deadline) over the
        live window; stale ring slots (older than the window) are
        skipped without being reset."""
        current = int(now / self._width)
        oldest = current - len(self._ring) + 1
        requests = errors = eligible = in_deadline = 0
        for bucket in self._ring:
            if bucket.index < oldest:
                continue
            requests += bucket.requests
            errors += bucket.errors
            eligible += bucket.latency_eligible
            in_deadline += bucket.in_deadline
        return requests, errors, eligible, in_deadline

    def _rates(self, now: float) -> dict:
        requests, errors, eligible, in_deadline = self._window_totals(now)
        availability = 1.0 - errors / requests if requests else 1.0
        attainment = in_deadline / eligible if eligible else 1.0
        return {
            "window_requests": requests,
            "window_errors": errors,
            "availability": availability,
            "availability_burn_rate": (
                (1.0 - availability) / (1.0 - self.objectives.availability)
            ),
            "latency_eligible": eligible,
            "latency_attainment": attainment,
            "latency_burn_rate": (
                (1.0 - attainment) / (1.0 - self.objectives.latency_target)
            ),
        }

    def _check_burn(self, now: float) -> None:
        # Caller holds the lock.  Emits an event whenever either burn
        # rate crosses 1.0 in either direction.
        rates = self._rates(now)
        for key, flag_attr in (
            ("availability_burn_rate", "_availability_burning"),
            ("latency_burn_rate", "_latency_burning"),
        ):
            burning = rates[key] >= 1.0
            if burning != getattr(self, flag_attr):
                setattr(self, flag_attr, burning)
                self._event(
                    "burn",
                    now=now,
                    objective=key.removesuffix("_burn_rate"),
                    burn_rate=round(rates[key], 4),
                    breached=burning,
                )

    def _event(self, kind: str, now: float, from_: str | None = None, **extra) -> None:
        event = {"kind": kind, "at_s": round(now, 3)}
        if from_ is not None:
            event["from"] = from_
        event.update(extra)
        self.events.append(event)
        if self._metrics is not None:
            self._metrics.inc("serve.slo.events")

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready SLO state for ``/healthz`` and ``/metricz``."""
        now = self._clock()
        with self._lock:
            rates = self._rates(now)
            payload = {
                "objectives": {
                    "availability": self.objectives.availability,
                    "latency_target": self.objectives.latency_target,
                    "latency_deadline_s": self.objectives.latency_deadline_s,
                    "window_s": self.objectives.window_s,
                },
                **{k: round(v, 6) if isinstance(v, float) else v
                   for k, v in rates.items()},
                "health": self._health,
                "events": list(self.events),
            }
        return payload

    def publish(self, metrics: MetricsRegistry) -> None:
        """Write the current SLO state to gauges (the /metricz path)."""
        now = self._clock()
        with self._lock:
            rates = self._rates(now)
            health = self._health
        metrics.set_gauge("serve.slo.availability", rates["availability"])
        metrics.set_gauge(
            "serve.slo.availability_burn_rate", rates["availability_burn_rate"]
        )
        metrics.set_gauge(
            "serve.slo.latency_attainment", rates["latency_attainment"]
        )
        metrics.set_gauge(
            "serve.slo.latency_burn_rate", rates["latency_burn_rate"]
        )
        metrics.set_gauge("serve.slo.degraded", 0.0 if health == "ok" else 1.0)
