"""A small ``urllib``-based client for the serving subsystem.

Used by the test suite, the ``make serve-smoke`` gate, and the load
benchmark — anything that needs to talk to a running ``repro serve``
without pulling in an HTTP library the container doesn't have.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro.faults import PERMANENT, TRANSIENT, FaultError, RetryPolicy

__all__ = ["ServeClient", "ServeError"]

# Statuses a client may retry: the server is overloaded or mid-failure,
# not rejecting the request itself.
_RETRYABLE_STATUSES = (429, 500, 502, 503, 504)


class ServeError(FaultError):
    """A non-2xx response, carrying status, body, and Retry-After.

    Overload/failure statuses classify as *transient* so a
    :class:`~repro.faults.RetryPolicy` around a client call retries
    them; 4xx rejections stay *permanent* (re-sending a bad request
    never helps).
    """

    def __init__(
        self, status: int, message: str, retry_after_s: float | None = None
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_s = retry_after_s
        self.category = (
            TRANSIENT if status in _RETRYABLE_STATUSES else PERMANENT
        )


class ServeClient:
    """Typed wrappers over the four server endpoints."""

    def __init__(self, base_url: str, timeout_s: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict[str, str], bytes]:
        body = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as response:
                return (
                    response.status,
                    {k.lower(): v for k, v in response.headers.items()},
                    response.read(),
                )
        except urllib.error.HTTPError as error:
            raw = error.read()
            retry_after = error.headers.get("Retry-After")
            try:
                message = json.loads(raw)["error"]["message"]
            except (ValueError, KeyError, TypeError):
                message = raw.decode("utf-8", "replace")
            raise ServeError(
                error.code,
                message,
                float(retry_after) if retry_after else None,
            ) from None

    def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        _, _, raw = self._request(method, path, payload)
        return json.loads(raw)

    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metricz(self, as_json: bool = True) -> dict | str:
        if as_json:
            return self._json("GET", "/metricz?format=json")
        _, _, raw = self._request("GET", "/metricz")
        return raw.decode("utf-8")

    def metricz_prom(self) -> str:
        """Prometheus text exposition of the replica's metrics."""
        _, _, raw = self._request("GET", "/metricz?format=prom")
        return raw.decode("utf-8")

    def reload(
        self,
        snapshot_id: str | None = None,
        retry: RetryPolicy | None = None,
    ) -> dict:
        """POST /v1/reload — swap the server onto a snapshot.

        ``snapshot_id`` targets an exact snapshot (promotion/rollback);
        ``None`` reloads the store's HEAD.  ``retry`` wraps the call in
        a :class:`~repro.faults.RetryPolicy` so transient failures (a
        store briefly mid-commit, an overloaded replica) are retried
        with backoff — the promoter and operator tooling share this one
        code path.
        """
        payload = {"snapshot": snapshot_id} if snapshot_id is not None else {}

        def send() -> dict:
            return self._json("POST", "/v1/reload", payload)

        return retry.call(send) if retry is not None else send()

    def search(self, first_name: str, surname: str, **options) -> dict:
        """POST /v1/search; keyword options mirror the JSON body fields
        (``gender``, ``year_from``, ``year_to``, ``parish``,
        ``record_type``, ``top``)."""
        payload = {"first_name": first_name, "surname": surname}
        payload.update({k: v for k, v in options.items() if v is not None})
        return self._json("POST", "/v1/search", payload)

    def pedigree(
        self, entity_id: int, generations: int = 2, format: str = "json"
    ) -> dict | str:
        path = f"/v1/pedigree/{entity_id}?generations={generations}&format={format}"
        if format == "json":
            return self._json("GET", path)
        _, _, raw = self._request("GET", path)
        return raw.decode("utf-8")
