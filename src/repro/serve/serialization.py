"""One JSON serialisation of query results and pedigrees.

The offline CLI (``repro query --format json``, ``repro pedigree
--format json``) and the online server (``POST /v1/search``,
``GET /v1/pedigree/<id>``) share these helpers so a scripted client can
switch between the two without changing its parser — the acceptance
contract is that the served payload is byte-for-byte the offline one.
"""

from __future__ import annotations

from typing import Mapping

from repro.pedigree.extraction import Pedigree
from repro.pedigree.graph import PedigreeEntity
from repro.query.engine import Query, RankedMatch

__all__ = [
    "entity_to_dict",
    "match_to_dict",
    "search_payload",
    "pedigree_payload",
    "query_from_mapping",
]


def entity_to_dict(entity: PedigreeEntity) -> dict:
    """Public JSON shape of one pedigree-graph entity."""
    year_range = entity.year_range()
    return {
        "entity_id": entity.entity_id,
        "name": entity.display_name(),
        "gender": entity.gender,
        "year_range": list(year_range) if year_range else None,
        "roles": [role.value for role in entity.roles],
        "record_ids": list(entity.record_ids),
        "values": {k: list(v) for k, v in entity.values.items()},
    }


def match_to_dict(match: RankedMatch) -> dict:
    """One ranked hit: the entity plus its score breakdown (Figure 6)."""
    return {
        "entity": entity_to_dict(match.entity),
        "score_percent": match.score_percent,
        "attribute_scores": dict(match.attribute_scores),
        "match_kinds": dict(match.match_kinds),
    }


def search_payload(matches: list[RankedMatch]) -> dict:
    """The full ``/v1/search`` (and ``query --format json``) response body."""
    return {
        "count": len(matches),
        "matches": [match_to_dict(match) for match in matches],
    }


def pedigree_payload(pedigree: Pedigree) -> dict:
    """The ``format=json`` pedigree body: entities with hop/generation
    annotations plus the typed edges among them."""
    entities = []
    for entity_id in sorted(pedigree.entities):
        blob = entity_to_dict(pedigree.entities[entity_id])
        blob["hops"] = pedigree.hops[entity_id]
        blob["generation"] = pedigree.generation_of(entity_id)
        entities.append(blob)
    return {
        "root_id": pedigree.root_id,
        "count": len(pedigree),
        "entities": entities,
        "edges": [list(edge) for edge in pedigree.edges],
    }


def query_from_mapping(payload: Mapping) -> tuple[Query, int]:
    """Build a validated ``(Query, top_m)`` from a JSON request body.

    Raises ``ValueError`` with a client-presentable message on unknown
    fields, wrong types, or ``Query``'s own validation failures — the
    server maps that straight to HTTP 400.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("request body must be a JSON object")
    allowed = {
        "first_name", "surname", "record_type", "gender",
        "year_from", "year_to", "parish", "top",
    }
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(f"unknown query fields: {', '.join(sorted(unknown))}")

    def string_field(name: str, required: bool = False) -> str | None:
        value = payload.get(name)
        if value is None:
            if required:
                raise ValueError(f"missing required field: {name}")
            return None
        if not isinstance(value, str):
            raise ValueError(f"field {name} must be a string")
        return value

    def int_field(name: str) -> int | None:
        value = payload.get(name)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"field {name} must be an integer")
        return value

    top_m = int_field("top")
    if top_m is None:
        top_m = 10
    if not 1 <= top_m <= 100:
        raise ValueError(f"top must be in [1, 100], got {top_m}")
    query = Query(
        first_name=string_field("first_name", required=True),
        surname=string_field("surname", required=True),
        record_type=string_field("record_type"),
        gender=string_field("gender"),
        year_from=int_field("year_from"),
        year_to=int_field("year_to"),
        parish=string_field("parish"),
    )
    return query, top_m
