"""Online query serving: the SNAPS web deployment shape (paper §7).

``repro.serve`` turns the reproduction from a one-shot CLI into a
long-lived service: a :class:`~repro.serve.app.ServingApp` loads a
resolved pedigree graph once, builds the query indexes once, and answers
concurrent JSON requests from a ``ThreadingHTTPServer`` — with an LRU+TTL
result cache (:mod:`repro.serve.cache`), a bounded concurrency gate
(:mod:`repro.serve.admission`), per-endpoint latency histograms and
request span trees via :mod:`repro.obs`, and a stdlib client
(:mod:`repro.serve.client`).  For multi-core machines,
:mod:`repro.serve.prefork` scales the same app across N forked worker
processes sharing one memory-mapped snapshot and one listening socket,
with request coalescing (:mod:`repro.serve.coalesce`) deduplicating
identical in-flight queries.  Start it with ``repro serve`` or embed it:

>>> from repro.serve import ServeConfig, ServingApp, make_server  # doctest: +SKIP
>>> app = ServingApp(graph, ServeConfig(cache_size=512))          # doctest: +SKIP
>>> make_server(app, "0.0.0.0", 8080).serve_forever()             # doctest: +SKIP
"""

from repro.serve.admission import AdmissionController, Deadline, Rejected
from repro.serve.app import (
    Response,
    ServeConfig,
    ServeHTTPServer,
    ServingApp,
    make_server,
)
from repro.serve.cache import LRUTTLCache, MISS, query_cache_key
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalesce import SingleFlight
from repro.serve.prefork import (
    PreforkConfig,
    PreforkMaster,
    merge_metric_snapshots,
    proc_private_bytes,
)
from repro.serve.serialization import (
    entity_to_dict,
    match_to_dict,
    pedigree_payload,
    query_from_mapping,
    search_payload,
)

__all__ = [
    "AdmissionController",
    "Deadline",
    "Rejected",
    "Response",
    "ServeConfig",
    "ServeHTTPServer",
    "ServingApp",
    "make_server",
    "LRUTTLCache",
    "MISS",
    "query_cache_key",
    "ServeClient",
    "ServeError",
    "SingleFlight",
    "PreforkConfig",
    "PreforkMaster",
    "merge_metric_snapshots",
    "proc_private_bytes",
    "entity_to_dict",
    "match_to_dict",
    "pedigree_payload",
    "query_from_mapping",
    "search_payload",
]
