"""End-to-end serving smoke check (the ``make serve-smoke`` gate).

Builds a tiny dataset in-process, resolves it, boots the HTTP server on
an ephemeral port, and drives it through the client: ``/healthz`` (with
SLO snapshot), one ``/v1/search`` (verified against an offline
``QueryEngine.search`` on the same graph), one pedigree fetch,
``/metricz``, and ``/metricz?format=prom`` (validated with the repo's
own exposition checker).  Exits non-zero on any mismatch so CI catches
serving regressions immediately.

Run with ``python -m repro.serve.smoke``.
"""

from __future__ import annotations

import sys
import threading

from repro.core import SnapsConfig, SnapsResolver
from repro.obs.prom import check_exposition
from repro.data.synthetic import make_tiny_dataset
from repro.pedigree import build_pedigree_graph
from repro.query import Query, QueryEngine
from repro.serve.app import ServeConfig, ServingApp, make_server
from repro.serve.client import ServeClient

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    dataset = make_tiny_dataset(seed=3)
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    app = ServingApp(graph, ServeConfig())
    server = make_server(app, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServeClient(f"http://{host}:{port}")
        health = client.healthz()
        if health["status"] != "ok" or health["entities"] != len(graph):
            print(f"serve-smoke: bad /healthz payload: {health}", file=sys.stderr)
            return 1
        # Search a name known to be indexed and check parity with the
        # offline engine on the same graph.
        probe = next(
            e for e in graph if e.first("first_name") and e.first("surname")
        )
        first, surname = probe.first("first_name"), probe.first("surname")
        served = client.search(first, surname, top=5)
        offline = QueryEngine(graph).search(
            Query(first_name=first, surname=surname), top_m=5
        )
        served_ranking = [
            (m["entity"]["entity_id"], m["score_percent"])
            for m in served["matches"]
        ]
        offline_ranking = [
            (m.entity.entity_id, m.score_percent) for m in offline
        ]
        if served_ranking != offline_ranking:
            print(
                f"serve-smoke: served ranking {served_ranking} != "
                f"offline {offline_ranking}",
                file=sys.stderr,
            )
            return 1
        if not served["matches"]:
            print("serve-smoke: search returned no matches", file=sys.stderr)
            return 1
        top_id = served["matches"][0]["entity"]["entity_id"]
        pedigree = client.pedigree(top_id, generations=2)
        if pedigree["root_id"] != top_id:
            print(f"serve-smoke: bad pedigree root: {pedigree}", file=sys.stderr)
            return 1
        metrics = client.metricz()
        if metrics["counters"].get("serve.requests", 0) < 3:
            print("serve-smoke: /metricz missing request counters", file=sys.stderr)
            return 1
        if health.get("slo", {}).get("health") != "ok":
            print(f"serve-smoke: bad SLO health in /healthz: {health.get('slo')}",
                  file=sys.stderr)
            return 1
        prom = client.metricz_prom()
        try:
            families = check_exposition(prom)
        except ValueError as exc:
            print(f"serve-smoke: invalid prom exposition: {exc}", file=sys.stderr)
            return 1
        for family in (
            "snaps_serve_search_latency_seconds",
            "snaps_serve_slo_availability",
            "snaps_serve_slo_latency_burn_rate",
            "snaps_process_rss_bytes",
        ):
            if family not in families:
                print(f"serve-smoke: prom exposition missing {family}",
                      file=sys.stderr)
                return 1
        print(
            f"serve-smoke ok: {health['entities']} entities, "
            f"{served['count']} hits for {first} {surname}, "
            f"pedigree of {top_id} has {pedigree['count']} people, "
            f"{len(families)} prom families"
        )
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":  # pragma: no cover - exercised via make serve-smoke
    raise SystemExit(main())
