"""Thread-safe LRU + TTL result cache for the serving layer.

The paper's online phase answers the same popular queries over and over
(family-history users search the same famous ancestors), so the server
memoises ranked results keyed on the *normalised* query tuple.  The
cache is a classic ``OrderedDict`` LRU with an optional per-entry TTL:
genealogy graphs change only when the offline resolver re-runs, so a TTL
of minutes is safe and bounds staleness after a graph swap.

Counters (hits / misses / evictions / expirations) are kept locally and,
when a :class:`~repro.obs.metrics.MetricsRegistry` is supplied, mirrored
into it under ``<prefix>.hits`` etc. so ``/metricz`` exposes them.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.query.engine import Query

__all__ = ["LRUTTLCache", "MISS", "query_cache_key"]

# Sentinel distinguishing "not cached" from a cached falsy value (an
# empty result list is a perfectly good cache entry).
MISS = object()


def query_cache_key(query: Query, top_m: int) -> tuple:
    """The normalised, hashable identity of one search request.

    Two requests that differ only in whitespace or letter case of their
    string fields must hit the same cache entry, mirroring how
    :class:`~repro.index.keyword.KeywordIndex` lower-cases its keys.
    """

    def norm(value: str | None) -> str | None:
        return value.strip().lower() if value is not None else None

    return (
        norm(query.first_name),
        norm(query.surname),
        query.record_type,
        query.gender,
        query.year_from,
        query.year_to,
        norm(query.parish),
        int(top_m),
    )


class LRUTTLCache:
    """Bounded mapping with least-recently-used eviction and expiry.

    ``max_size=0`` disables the cache entirely (every ``get`` misses and
    ``put`` is a no-op) — the serving benchmark uses this for its
    cache-off baseline.  ``ttl_s=None`` (or ``0``) stores entries
    forever.  ``clock`` is injectable for deterministic TTL tests.

    With ``keep_stale`` the cache retains expired entries (still subject
    to LRU bounds): ``get`` treats them as misses, but
    :meth:`get_stale` can recover them for degraded-mode serving — a
    stale answer with a ``Warning`` header beats a 503 when the backend
    is broken.

    Entries are additionally tagged with the cache *epoch*.
    :meth:`bump_epoch` (called on snapshot promotion) marks everything
    cached so far as belonging to the previous snapshot: ``get`` treats
    old-epoch entries exactly like expired ones, so a freshly promoted
    snapshot can never serve a predecessor's results as a normal cache
    hit — only via the explicitly-marked ``get_stale`` degraded path.

    The epoch alone is a *per-process* counter, which is not enough once
    processes fork: a pre-fork worker inherits its parent's warm cache
    together with the parent's epoch counter, so entries computed
    against a previous snapshot would look perfectly fresh in the child.
    Entries are therefore also tagged with the **snapshot token** (the
    snapshot id) that was bound when they were stored; :meth:`rebind`
    declares which snapshot the process is now serving, and ``get``
    refuses entries stored under any other token exactly like expired
    ones.  A post-reload worker rotation thus can never serve a
    pre-reload result without the ``Warning: 110`` stale marking, no
    matter which process the cache bytes were inherited from.
    """

    def __init__(
        self,
        max_size: int = 256,
        ttl_s: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: Any = None,
        prefix: str = "serve.cache",
        keep_stale: bool = False,
        token: str | None = None,
    ) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        if ttl_s is not None and ttl_s < 0:
            raise ValueError(f"ttl_s must be >= 0 or None, got {ttl_s}")
        self.max_size = max_size
        self.ttl_s = ttl_s if ttl_s else None
        self.keep_stale = keep_stale
        self._clock = clock
        self._metrics = metrics
        self._prefix = prefix
        # key -> [value, expires_at | None, stored_at, expiry_counted,
        # epoch, token]; insertion order == recency.
        self._entries: OrderedDict[Hashable, list] = OrderedDict()
        self._lock = threading.Lock()
        self._epoch = 0
        self._token = token
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.stale_hits = 0
        self.invalidations = 0

    def _count(self, what: str, n: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.inc(f"{self._prefix}.{what}", n)

    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``, or the :data:`MISS` sentinel."""
        now = self._clock()
        expired = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                value, expires_at, _, counted, epoch, token = entry
                if (
                    (expires_at is not None and now >= expires_at)
                    or epoch != self._epoch
                    or token != self._token
                ):
                    expired = not counted
                    if self.keep_stale:
                        entry[3] = True  # count the expiry only once
                    else:
                        del self._entries[key]
                    if expired:
                        self.expirations += 1
                    self.misses += 1
                else:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self._count("hits")
                    return value
            else:
                self.misses += 1
        self._count("misses")
        if expired:
            self._count("expirations")
        return MISS

    def get_stale(self, key: Hashable) -> Any:
        """``(value, age_s)`` for ``key`` even if expired, or ``MISS``.

        Only meaningful with ``keep_stale``; degraded-mode serving uses
        the age for its staleness header.  Does not refresh recency.
        """
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            value, _, stored_at, _, _, _ = entry
            self.stale_hits += 1
        self._count("stale_hits")
        return value, max(0.0, now - stored_at)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/refresh ``key``, evicting the LRU entry on overflow."""
        if self.max_size == 0:
            return
        now = self._clock()
        expires_at = now + self.ttl_s if self.ttl_s is not None else None
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = [
                value, expires_at, now, False, self._epoch, self._token,
            ]
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self.evictions += 1
                evicted += 1
        if evicted:
            self._count("evictions", evicted)

    def bump_epoch(self) -> None:
        """Mark everything cached so far as pre-promotion.

        Without ``keep_stale`` the old entries are simply dropped; with
        it they stay recoverable through :meth:`get_stale` (degraded
        mode) but ``get`` will never return them as a fresh hit.
        """
        with self._lock:
            self._epoch += 1
            self.invalidations += 1
            if not self.keep_stale:
                self._entries.clear()

    def rebind(self, token: str | None) -> None:
        """Declare which snapshot this process now serves.

        A no-op when ``token`` matches the currently bound one (an
        idempotent re-promotion must not blow the cache); otherwise the
        change invalidates every stored entry — both those stored under
        the old token *and* any inherited across a ``fork`` from a
        parent bound elsewhere — exactly like :meth:`bump_epoch` does.
        """
        with self._lock:
            if token == self._token:
                return
            self._token = token
            self._epoch += 1
            self.invalidations += 1
            if not self.keep_stale:
                self._entries.clear()

    @property
    def token(self) -> str | None:
        """The currently bound snapshot token (None = unbound)."""
        with self._lock:
            return self._token

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """Point-in-time counter snapshot (for /metricz gauges and tests)."""
        with self._lock:
            return {
                "size": len(self._entries),
                "max_size": self.max_size,
                "ttl_s": self.ttl_s,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "stale_hits": self.stale_hits,
                "invalidations": self.invalidations,
            }
