"""The four baseline ER systems of the paper's Table 4.

All baselines share SNAPS's blocking front-end and comparator registry
(the paper uses the same indexing for every system), so the evaluation
isolates the *decision model*:

* :class:`~repro.baselines.attr_sim.AttrSimLinker` — plain pairwise
  threshold classification + transitive closure, no relationships;
* :class:`~repro.baselines.dep_graph.DepGraphLinker` — Dong et al. 2005
  style propagation of link decisions with constraints, but no
  disambiguation, no partial-match-group handling, no refinement;
* :class:`~repro.baselines.rel_cluster.RelClusterLinker` — Bhattacharya &
  Getoor 2007 style collective relational clustering with ambiguity but
  static attribute values;
* :class:`~repro.baselines.supervised.SupervisedLinker` — a
  Magellan-style feature-vector pipeline over four classifiers in two
  training regimes.
"""

from repro.baselines.attr_sim import AttrSimLinker
from repro.baselines.dep_graph import DepGraphLinker
from repro.baselines.fellegi_sunter import FellegiSunterLinker
from repro.baselines.rel_cluster import RelClusterLinker
from repro.baselines.supervised import SupervisedLinker, SupervisedOutcome

__all__ = [
    "AttrSimLinker",
    "DepGraphLinker",
    "FellegiSunterLinker",
    "RelClusterLinker",
    "SupervisedLinker",
    "SupervisedOutcome",
]
