"""Rel-Cluster baseline: Bhattacharya & Getoor (TKDD 2007)-style
collective relational clustering.

Entities are clusters; candidate cluster pairs are scored with a convex
combination of **attribute similarity** (on the records' *static* values
— no propagation of changed values) and **relational similarity** (Jaccard
overlap of the clusters' neighbour-cluster sets, where neighbours are the
co-occurring people on the same certificates).  Ambiguity is incorporated
in the attribute component exactly as SNAPS's Eq. (2)/(3).  The queue is
processed greedily best-first and merges update the relational
neighbourhoods of affected clusters — the iterative cluster-merging
process of the original paper, and also why this baseline is the slowest
unsupervised system in Table 5.

Differences from SNAPS (per the paper's Section 10 discussion): no
propagation of changing QID values, no partial-match-group handling, no
wrong-link refinement.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.blocking.candidates import generate_candidate_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.lsh import LshBlocker
from repro.core.config import SnapsConfig
from repro.core.constraints import ConstraintChecker
from repro.core.dependency_graph import build_dependency_graph
from repro.core.entities import EntityStore
from repro.core.scoring import PairScorer
from repro.data.records import Dataset
from repro.data.roles import PARENT_ROLE_GROUPS
from repro.similarity.registry import ComparatorRegistry, default_registry
from repro.utils.timer import Stopwatch

__all__ = ["RelClusterLinker", "RelClusterResult"]


@dataclass
class RelClusterResult:
    """Final clustering produced by the relational clustering loop."""

    dataset: Dataset
    entities: EntityStore
    timings: Stopwatch = field(default_factory=Stopwatch)
    merges: int = 0

    def matched_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        left, right = role_pair.split("-")
        return self.entities.matched_pairs(
            PARENT_ROLE_GROUPS[left], PARENT_ROLE_GROUPS[right]
        )


class RelClusterLinker:
    """Greedy best-first collective relational clustering."""

    def __init__(
        self,
        threshold: float = 0.80,
        alpha: float = 0.7,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
    ) -> None:
        """``alpha`` weights attribute vs relational similarity;
        ``threshold`` is the minimum combined score for a merge."""
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.alpha = alpha
        self.config = config or SnapsConfig()
        self.registry = registry or default_registry()

    # ------------------------------------------------------------------

    def link(self, dataset: Dataset) -> RelClusterResult:
        config = self.config
        timings = Stopwatch()
        blocker = CompositeBlocker(
            [
                LshBlocker(
                    n_bands=config.lsh_bands,
                    rows_per_band=config.lsh_rows_per_band,
                    seed=config.lsh_seed,
                ),
                PhoneticNameKeyBlocker(),
            ]
        )
        with timings.phase("blocking"):
            pairs = list(
                generate_candidate_pairs(dataset, blocker, config.temporal_slack_years)
            )
        with timings.phase("graph_generation"):
            graph = build_dependency_graph(dataset, pairs, config, self.registry)
        scorer = PairScorer(dataset, config, self.registry)
        checker = ConstraintChecker(config.temporal_slack_years, propagate=True)
        store = EntityStore(dataset)
        # Certificate co-occurrence neighbourhood of each record.
        neighbours: dict[int, set[int]] = {r.record_id: set() for r in dataset}
        for cert in dataset.certificates.values():
            rids = list(cert.roles.values())
            for a, b in itertools.combinations(rids, 2):
                neighbours[a].add(b)
                neighbours[b].add(a)
        merges = 0
        with timings.phase("clustering"):
            # Bootstrap phase (Bhattacharya & Getoor seed their clustering
            # with exact/near-exact attribute matches): merge pairs whose
            # attribute+ambiguity score alone clears the threshold.  This
            # gives the relational component non-empty neighbourhoods.
            scored: list[tuple[float, int, int]] = []
            for node in graph:
                base = scorer.combined_similarity(node)
                if base >= self.threshold - (1.0 - self.alpha):
                    scored.append((base, node.rid_a, node.rid_b))
            scored.sort(reverse=True)
            for base, rid_a, rid_b in scored:
                if base < self.threshold:
                    break
                if store.same_entity(rid_a, rid_b):
                    continue
                a, b = dataset.record(rid_a), dataset.record(rid_b)
                if checker.can_merge(store, a, b):
                    store.merge(rid_a, rid_b)
                    merges += 1
            # Iterative phase: relational evidence lifts borderline pairs
            # over the threshold; repeat until no merge changes anything.
            changed = True
            while changed:
                changed = False
                for base, rid_a, rid_b in scored:
                    if store.same_entity(rid_a, rid_b):
                        continue
                    a, b = dataset.record(rid_a), dataset.record(rid_b)
                    if not checker.can_merge(store, a, b):
                        continue
                    relational = self._relational_similarity(
                        store, neighbours, rid_a, rid_b
                    )
                    score = self.alpha * base + (1.0 - self.alpha) * relational
                    if score >= self.threshold:
                        store.merge(rid_a, rid_b)
                        merges += 1
                        changed = True
        return RelClusterResult(
            dataset=dataset, entities=store, timings=timings, merges=merges
        )

    def _relational_similarity(
        self,
        store: EntityStore,
        neighbours: dict[int, set[int]],
        rid_a: int,
        rid_b: int,
    ) -> float:
        """Jaccard overlap of the two clusters' neighbour-cluster sets."""
        entity_a = store.entity_of(rid_a)
        entity_b = store.entity_of(rid_b)
        clusters_a = self._neighbour_clusters(store, neighbours, entity_a.record_ids)
        clusters_b = self._neighbour_clusters(store, neighbours, entity_b.record_ids)
        if not clusters_a and not clusters_b:
            return 0.0
        union = clusters_a | clusters_b
        if not union:
            return 0.0
        return len(clusters_a & clusters_b) / len(union)

    @staticmethod
    def _neighbour_clusters(
        store: EntityStore, neighbours: dict[int, set[int]], record_ids: set[int]
    ) -> set[int]:
        out: set[int] = set()
        for rid in record_ids:
            for neighbour_rid in neighbours[rid]:
                out.add(store.entity_of(neighbour_rid).entity_id)
        return out
