"""Supervised ("Magellan-style") baseline: feature vectors + classifiers.

Reproduces the paper's fourth baseline: candidate pairs are turned into
per-attribute similarity feature vectors and classified by four models —
an SVM, a random forest, a logistic regression, and a decision tree — in
two training regimes:

* ``per_role_pair`` — trained only on labelled pairs of the evaluated
  role pair (the favourable regime);
* ``all_role_pairs`` — trained on labelled pairs of every role-pair type
  (the realistic regime with incomplete per-type ground truth).

Table 4 reports the average ± standard deviation over the 4 classifiers
× 2 regimes; the qualitative finding is the large spread between regimes.
Labels come from the dataset's ground truth (the paper trains Magellan on
the curated expert links the same way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.blocking.candidates import CandidatePair, generate_candidate_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.lsh import LshBlocker
from repro.core.config import SnapsConfig
from repro.core.scoring import NameFrequencyIndex
from repro.data.records import Dataset, Record
from repro.data.roles import PARENT_ROLE_GROUPS
from repro.ml import (
    Classifier,
    DecisionTree,
    LinearSVM,
    LogisticRegression,
    RandomForest,
    StandardScaler,
)
from repro.similarity.registry import ComparatorRegistry, default_registry
from repro.utils.rng import make_rng
from repro.utils.timer import Stopwatch

__all__ = ["SupervisedLinker", "SupervisedOutcome"]

# Feature layout: per-attribute similarities plus numeric context.
_FEATURE_ATTRIBUTES = ("first_name", "surname", "parish", "address", "occupation")


def default_classifiers(seed: int = 0) -> dict[str, Classifier]:
    """The paper's four classifier families."""
    return {
        "svm": LinearSVM(seed=seed),
        "random_forest": RandomForest(seed=seed),
        "logistic_regression": LogisticRegression(),
        "decision_tree": DecisionTree(seed=seed),
    }


@dataclass
class SupervisedOutcome:
    """Predictions of one classifier under one training regime."""

    classifier_name: str
    regime: str
    predicted_pairs: set[tuple[int, int]]
    train_size: int
    timings: Stopwatch = field(default_factory=Stopwatch)


class SupervisedLinker:
    """Feature-pipeline + classifier ensemble over candidate pairs."""

    def __init__(
        self,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
        train_fraction: float = 0.5,
        max_train_pairs: int = 40000,
        seed: int = 0,
    ) -> None:
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0,1), got {train_fraction}")
        self.config = config or SnapsConfig()
        self.registry = registry or default_registry()
        self.train_fraction = train_fraction
        self.max_train_pairs = max_train_pairs
        self.seed = seed
        self._sim_cache: dict[tuple[str, str, str], float] = {}

    # ------------------------------------------------------------------
    # Feature extraction
    # ------------------------------------------------------------------

    def _similarity(self, attribute: str, a: str | None, b: str | None) -> float:
        """Cached comparator output; missing values score -1 (a distinct
        signal the trees can split on, unlike silently scoring 0)."""
        if a is None or b is None:
            return -1.0
        lo, hi = sorted((a, b))
        key = (attribute, lo, hi)
        cached = self._sim_cache.get(key)
        if cached is None:
            cached = self.registry.compare(attribute, a, b) or 0.0
            self._sim_cache[key] = cached
        return cached

    def features(
        self, a: Record, b: Record, frequencies: NameFrequencyIndex
    ) -> list[float]:
        """Feature vector of one record pair."""
        row = [
            self._similarity(attr, a.get(attr), b.get(attr))
            for attr in _FEATURE_ATTRIBUTES
        ]
        row.append(abs(a.event_year - b.event_year) / 40.0)
        freq = frequencies.frequency(a) + frequencies.frequency(b)
        row.append(min(1.0, freq / max(2, frequencies.total_records) * 50.0))
        row.append(1.0 if a.role is b.role else 0.0)
        return row

    # ------------------------------------------------------------------

    def _candidates(self, dataset: Dataset) -> list[CandidatePair]:
        config = self.config
        blocker = CompositeBlocker(
            [
                LshBlocker(
                    n_bands=config.lsh_bands,
                    rows_per_band=config.lsh_rows_per_band,
                    seed=config.lsh_seed,
                ),
                PhoneticNameKeyBlocker(),
            ]
        )
        return list(
            generate_candidate_pairs(dataset, blocker, config.temporal_slack_years)
        )

    @staticmethod
    def _pair_in_role_pair(a: Record, b: Record, role_pair: str) -> bool:
        left_name, right_name = role_pair.split("-")
        left, right = PARENT_ROLE_GROUPS[left_name], PARENT_ROLE_GROUPS[right_name]
        return (a.role in left and b.role in right) or (
            a.role in right and b.role in left
        )

    def run(
        self,
        dataset: Dataset,
        role_pair: str,
        regimes: tuple[str, ...] = ("per_role_pair", "all_role_pairs"),
        classifiers: dict[str, Classifier] | None = None,
    ) -> list[SupervisedOutcome]:
        """Train and evaluate every classifier under every regime.

        Returns one outcome per (classifier, regime); the predicted pairs
        are restricted to ``role_pair`` so they evaluate directly against
        ``dataset.true_match_pairs(role_pair)``.
        """
        classifiers = classifiers or default_classifiers(self.seed)
        rng = make_rng(self.seed)
        candidates = self._candidates(dataset)
        frequencies = NameFrequencyIndex(dataset)
        feature_rows: list[list[float]] = []
        labels: list[int] = []
        in_role_pair: list[bool] = []
        pair_keys: list[tuple[int, int]] = []
        for pair in candidates:
            a, b = dataset.record(pair.rid_a), dataset.record(pair.rid_b)
            feature_rows.append(self.features(a, b, frequencies))
            labels.append(1 if a.person_id == b.person_id else 0)
            in_role_pair.append(self._pair_in_role_pair(a, b, role_pair))
            pair_keys.append(pair.key())
        X = np.asarray(feature_rows)
        y = np.asarray(labels)
        role_mask = np.asarray(in_role_pair)
        outcomes: list[SupervisedOutcome] = []
        for regime in regimes:
            train_pool = (
                np.flatnonzero(role_mask) if regime == "per_role_pair"
                else np.arange(len(X))
            )
            if len(train_pool) < 10:
                raise ValueError(f"not enough pairs to train regime {regime}")
            shuffled = list(train_pool)
            rng.shuffle(shuffled)
            n_train = min(
                self.max_train_pairs, int(len(shuffled) * self.train_fraction)
            )
            train_idx = np.asarray(shuffled[:n_train])
            scaler = StandardScaler()
            X_train = scaler.fit_transform(X[train_idx])
            y_train = y[train_idx]
            if len(np.unique(y_train)) < 2:
                raise ValueError(f"training sample for {regime} has one class only")
            X_eval = scaler.transform(X[role_mask])
            eval_keys = [k for k, m in zip(pair_keys, role_mask) if m]
            for name, classifier in classifiers.items():
                timings = Stopwatch()
                with timings.phase("train"):
                    classifier.fit(X_train, y_train)
                with timings.phase("predict"):
                    predictions = classifier.predict(X_eval)
                predicted = {
                    key
                    for key, label in zip(eval_keys, predictions)
                    if label == 1
                }
                outcomes.append(
                    SupervisedOutcome(
                        classifier_name=name,
                        regime=regime,
                        predicted_pairs=predicted,
                        train_size=len(train_idx),
                        timings=timings,
                    )
                )
        return outcomes
