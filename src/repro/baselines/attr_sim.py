"""Attr-Sim baseline: traditional pairwise record linkage.

Every blocked candidate pair is scored with the weighted attribute
similarity of Eq. (1) on the raw record values; pairs at or above the
threshold are classified matches and closed transitively (an entity is a
connected component of match decisions).  No relationship information, no
constraints beyond the structural role/gender/temporal candidate filters,
no propagation — the paper's Table 4 shows this keeps recall high but
destroys precision on ambiguous person data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.candidates import generate_candidate_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.lsh import LshBlocker
from repro.core.config import SnapsConfig
from repro.core.dependency_graph import build_dependency_graph
from repro.core.scoring import PairScorer
from repro.data.records import Dataset
from repro.data.roles import PARENT_ROLE_GROUPS
from repro.similarity.registry import ComparatorRegistry, default_registry
from repro.utils.timer import Stopwatch
from repro.utils.union_find import UnionFind

__all__ = ["AttrSimLinker", "AttrSimResult"]


@dataclass
class AttrSimResult:
    """Entities as connected components of threshold match decisions."""

    dataset: Dataset
    components: UnionFind
    timings: Stopwatch = field(default_factory=Stopwatch)

    def matched_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        """Within-component record pairs restricted to ``role_pair``."""
        left_name, right_name = role_pair.split("-")
        left = PARENT_ROLE_GROUPS[left_name]
        right = PARENT_ROLE_GROUPS[right_name]
        groups = self.components.groups()
        pairs: set[tuple[int, int]] = set()
        for members in groups.values():
            if len(members) < 2:
                continue
            records = [self.dataset.record(rid) for rid in members]
            for i, a in enumerate(records):
                for b in records[i + 1 :]:
                    if (a.role in left and b.role in right) or (
                        a.role in right and b.role in left
                    ):
                        lo, hi = sorted((a.record_id, b.record_id))
                        pairs.add((lo, hi))
        return pairs


class AttrSimLinker:
    """Pairwise weighted-similarity linkage with transitive closure."""

    def __init__(
        self,
        threshold: float = 0.85,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.config = config or SnapsConfig()
        self.registry = registry or default_registry()

    def link(self, dataset: Dataset) -> AttrSimResult:
        """Classify all candidate pairs and close transitively."""
        config = self.config
        timings = Stopwatch()
        blocker = CompositeBlocker(
            [
                LshBlocker(
                    n_bands=config.lsh_bands,
                    rows_per_band=config.lsh_rows_per_band,
                    seed=config.lsh_seed,
                ),
                PhoneticNameKeyBlocker(),
            ]
        )
        with timings.phase("blocking"):
            pairs = list(
                generate_candidate_pairs(
                    dataset, blocker, config.temporal_slack_years
                )
            )
        with timings.phase("comparison"):
            graph = build_dependency_graph(dataset, pairs, config, self.registry)
            scorer = PairScorer(dataset, config, self.registry)
        components: UnionFind = UnionFind(r.record_id for r in dataset)
        with timings.phase("classification"):
            for node in graph:
                if scorer.atomic_similarity(node) >= self.threshold:
                    components.union(node.rid_a, node.rid_b)
        return AttrSimResult(dataset=dataset, components=components, timings=timings)
