"""Dep-Graph baseline: Dong et al. (SIGMOD 2005)-style reference
reconciliation.

Propagates link decisions through the dependency graph — merged entities
contribute their accumulated QID values (like PROP-A) and the same
temporal/link constraints are enforced (like PROP-C) — but, per the
paper's characterisation of this baseline, it performs **no
disambiguation** (γ = 1), **no partial-match-group handling** (a group
merges in full or not at all; one dissimilar node blocks its whole
group), and **no cluster refinement**.

Implementation-wise this is the SNAPS resolver with AMB, REL, and REF
switched off, which is exactly the paper's positioning: Table 3's
"without AMB/REL/REF" column restricted further.
"""

from __future__ import annotations

from repro.core.config import SnapsConfig
from repro.core.resolver import LinkageResult, SnapsResolver
from repro.data.records import Dataset
from repro.similarity.registry import ComparatorRegistry

__all__ = ["DepGraphLinker"]


class DepGraphLinker:
    """Collective ER with propagation but no AMB / REL / REF."""

    def __init__(
        self,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
    ) -> None:
        base = config or SnapsConfig()
        # Rebuild the config with the Dep-Graph switches; dataclasses.replace
        # keeps all user-tuned thresholds.
        import dataclasses

        self.config = dataclasses.replace(
            base,
            use_propagation=True,
            use_ambiguity=False,
            use_relational=False,
            use_refinement=False,
            gate_on_combined=False,
        )
        self.registry = registry

    def link(self, dataset: Dataset) -> LinkageResult:
        """Run the propagation-only pipeline on ``dataset``."""
        return SnapsResolver(self.config, self.registry).resolve(dataset)
