"""Fellegi-Sunter probabilistic record linkage with EM estimation.

The classical probabilistic decision model (Fellegi & Sunter 1969, cited
by the paper as the foundational decision model).  Candidate pairs are
reduced to binary agreement patterns over the QID attributes; the m- and
u-probabilities (P(agree | match) and P(agree | non-match)) and the match
prevalence are estimated **unsupervised** with
expectation-maximisation under the usual conditional-independence
assumption; pairs whose log-likelihood ratio

    R = Σ_a  log( m_a / u_a )          for agreeing attributes
      + Σ_a  log( (1-m_a) / (1-u_a) )  for disagreeing attributes

exceeds the upper threshold are classified matches.  Like Attr-Sim this
is pairwise (no relationships, no constraints beyond candidate
filtering); it completes the baseline family with the probabilistic
generation of ER systems.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.blocking.candidates import generate_candidate_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.lsh import LshBlocker
from repro.core.config import SnapsConfig
from repro.data.records import Dataset
from repro.data.roles import PARENT_ROLE_GROUPS
from repro.similarity.registry import ComparatorRegistry, default_registry
from repro.utils.timer import Stopwatch
from repro.utils.union_find import UnionFind

__all__ = ["FellegiSunterLinker", "FellegiSunterResult", "EmEstimate"]

_AGREE_THRESHOLD = 0.85  # similarity above which an attribute "agrees"


@dataclass
class EmEstimate:
    """EM-fitted parameters of the Fellegi-Sunter model."""

    attributes: tuple[str, ...]
    m: np.ndarray          # P(agreement | match) per attribute
    u: np.ndarray          # P(agreement | non-match) per attribute
    prevalence: float      # P(match) among candidate pairs
    n_iterations: int

    def weight(self, pattern: np.ndarray) -> float:
        """Log-likelihood ratio of one agreement pattern.

        ``pattern`` entries: 1 = agree, 0 = disagree, -1 = missing (a
        missing comparison contributes nothing, following the standard
        treatment)."""
        total = 0.0
        for agree, m_a, u_a in zip(pattern, self.m, self.u):
            if agree < 0:
                continue
            if agree == 1:
                total += math.log(m_a / u_a)
            else:
                total += math.log((1.0 - m_a) / (1.0 - u_a))
        return total


@dataclass
class FellegiSunterResult:
    """Classified pairs plus the fitted model, for inspection."""

    dataset: Dataset
    components: UnionFind
    estimate: EmEstimate
    timings: Stopwatch = field(default_factory=Stopwatch)

    def matched_pairs(self, role_pair: str) -> set[tuple[int, int]]:
        left_name, right_name = role_pair.split("-")
        left = PARENT_ROLE_GROUPS[left_name]
        right = PARENT_ROLE_GROUPS[right_name]
        pairs: set[tuple[int, int]] = set()
        for members in self.components.groups().values():
            if len(members) < 2:
                continue
            records = [self.dataset.record(rid) for rid in members]
            for i, a in enumerate(records):
                for b in records[i + 1 :]:
                    if (a.role in left and b.role in right) or (
                        a.role in right and b.role in left
                    ):
                        lo, hi = sorted((a.record_id, b.record_id))
                        pairs.add((lo, hi))
        return pairs


class FellegiSunterLinker:
    """Unsupervised probabilistic pairwise linkage."""

    def __init__(
        self,
        attributes: tuple[str, ...] = (
            "first_name", "surname", "parish", "address", "occupation",
        ),
        match_weight_threshold: float | None = None,
        config: SnapsConfig | None = None,
        registry: ComparatorRegistry | None = None,
        max_em_iterations: int = 100,
        seed: int = 0,
    ) -> None:
        """``match_weight_threshold=None`` derives the threshold from the
        fitted model: the weight at which the posterior match probability
        reaches 0.95."""
        if not attributes:
            raise ValueError("need at least one comparison attribute")
        self.attributes = attributes
        self.match_weight_threshold = match_weight_threshold
        self.config = config or SnapsConfig()
        self.registry = registry or default_registry()
        self.max_em_iterations = max_em_iterations
        self.seed = seed

    # ------------------------------------------------------------------

    def _patterns(self, dataset: Dataset) -> tuple[np.ndarray, list[tuple[int, int]]]:
        config = self.config
        blocker = CompositeBlocker(
            [
                LshBlocker(
                    n_bands=config.lsh_bands,
                    rows_per_band=config.lsh_rows_per_band,
                    seed=config.lsh_seed,
                ),
                PhoneticNameKeyBlocker(),
            ]
        )
        sim_cache: dict[tuple[str, str, str], float] = {}
        rows = []
        keys = []
        for pair in generate_candidate_pairs(
            dataset, blocker, config.temporal_slack_years
        ):
            a = dataset.record(pair.rid_a)
            b = dataset.record(pair.rid_b)
            pattern = []
            for attribute in self.attributes:
                value_a, value_b = a.get(attribute), b.get(attribute)
                if value_a is None or value_b is None:
                    pattern.append(-1)
                    continue
                lo, hi = sorted((value_a, value_b))
                cache_key = (attribute, lo, hi)
                similarity = sim_cache.get(cache_key)
                if similarity is None:
                    similarity = (
                        self.registry.compare(attribute, value_a, value_b) or 0.0
                    )
                    sim_cache[cache_key] = similarity
                pattern.append(1 if similarity >= _AGREE_THRESHOLD else 0)
            rows.append(pattern)
            keys.append(pair.key())
        return np.asarray(rows, dtype=np.int8), keys

    def fit_em(self, patterns: np.ndarray) -> EmEstimate:
        """Estimate m/u/prevalence by EM over agreement patterns."""
        if len(patterns) == 0:
            raise ValueError("no candidate pairs to fit on")
        d = patterns.shape[1]
        # Sensible initialisation: matches agree often, non-matches rarely.
        m = np.full(d, 0.9)
        u = np.full(d, 0.1)
        prevalence = 0.05
        agree = (patterns == 1).astype(float)
        disagree = (patterns == 0).astype(float)
        iterations = 0
        for iterations in range(1, self.max_em_iterations + 1):
            # E-step: posterior match probability per pair (missing
            # comparisons contribute factor 1).
            log_match = agree @ np.log(m) + disagree @ np.log(1.0 - m)
            log_non = agree @ np.log(u) + disagree @ np.log(1.0 - u)
            log_post = (
                math.log(prevalence) + log_match
            ) - np.logaddexp(
                math.log(prevalence) + log_match,
                math.log(1.0 - prevalence) + log_non,
            )
            posterior = np.exp(log_post)
            # M-step.
            new_prevalence = float(posterior.mean())
            observed = agree + disagree  # 1 where the comparison exists
            m_num = (posterior[:, None] * agree).sum(axis=0)
            m_den = (posterior[:, None] * observed).sum(axis=0)
            u_num = ((1.0 - posterior)[:, None] * agree).sum(axis=0)
            u_den = ((1.0 - posterior)[:, None] * observed).sum(axis=0)
            new_m = np.clip(m_num / np.maximum(m_den, 1e-9), 1e-4, 1.0 - 1e-4)
            new_u = np.clip(u_num / np.maximum(u_den, 1e-9), 1e-4, 1.0 - 1e-4)
            new_prevalence = min(max(new_prevalence, 1e-6), 1.0 - 1e-6)
            converged = (
                np.abs(new_m - m).max() < 1e-6
                and np.abs(new_u - u).max() < 1e-6
                and abs(new_prevalence - prevalence) < 1e-8
            )
            m, u, prevalence = new_m, new_u, new_prevalence
            if converged:
                break
        return EmEstimate(
            attributes=self.attributes,
            m=m,
            u=u,
            prevalence=prevalence,
            n_iterations=iterations,
        )

    def _threshold(self, estimate: EmEstimate) -> float:
        if self.match_weight_threshold is not None:
            return self.match_weight_threshold
        # Weight w where posterior P(match | w) = 0.95 under the prior:
        # logit(0.95) = log(prevalence/(1-prevalence)) + w.
        prior_logit = math.log(estimate.prevalence / (1.0 - estimate.prevalence))
        return math.log(0.95 / 0.05) - prior_logit

    def link(self, dataset: Dataset) -> FellegiSunterResult:
        """Fit the model unsupervised and classify all candidate pairs."""
        timings = Stopwatch()
        with timings.phase("comparison"):
            patterns, keys = self._patterns(dataset)
        with timings.phase("em"):
            estimate = self.fit_em(patterns)
        threshold = self._threshold(estimate)
        components: UnionFind = UnionFind(r.record_id for r in dataset)
        with timings.phase("classification"):
            log_m = np.log(estimate.m)
            log_1m = np.log(1.0 - estimate.m)
            log_u = np.log(estimate.u)
            log_1u = np.log(1.0 - estimate.u)
            agree = (patterns == 1).astype(float)
            disagree = (patterns == 0).astype(float)
            weights = (
                agree @ (log_m - log_u) + disagree @ (log_1m - log_1u)
            )
            for (rid_a, rid_b), weight in zip(keys, weights):
                if weight >= threshold:
                    components.union(rid_a, rid_b)
        return FellegiSunterResult(
            dataset=dataset,
            components=components,
            estimate=estimate,
            timings=timings,
        )
