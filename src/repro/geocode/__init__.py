"""Historical address geocoding (Kirielle, Christen & Ranbaduge, AusDM
2019 — the technique the paper uses to compare IOS addresses by distance).

Components:

* :class:`~repro.geocode.gazetteer.Gazetteer` — the reference source of
  coordinates: parishes and street stems (synthetic stand-in for the
  Ordnance Survey data the authors used);
* :func:`~repro.geocode.parser.parse_address` — splits a raw historical
  address into house number, street, and parish;
* :class:`~repro.geocode.geocoder.Geocoder` — assigns coordinates to
  addresses, resolving ambiguous street names by outlier detection over
  candidate locations;
* :func:`~repro.geocode.geocoder.geo_address_comparator` — an
  address comparator for the similarity registry that scores by geodesic
  distance instead of token overlap (how the paper compares IOS
  addresses).
"""

from repro.geocode.gazetteer import Gazetteer, default_gazetteer
from repro.geocode.parser import ParsedAddress, parse_address
from repro.geocode.geocoder import Geocoder, geo_address_comparator

__all__ = [
    "Gazetteer",
    "default_gazetteer",
    "ParsedAddress",
    "parse_address",
    "Geocoder",
    "geo_address_comparator",
]
