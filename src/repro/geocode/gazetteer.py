"""Gazetteer: the reference coordinates for parishes and streets.

The real system geocodes against Ordnance Survey data; our synthetic
stand-in derives street coordinates deterministically from the parish
centre plus a stable per-street offset, so the same street always maps to
the same point and distances behave sensibly (streets of one parish lie
within ~2 km of its centre; parishes are 5–40 km apart).
"""

from __future__ import annotations

import math
import zlib

from repro.data.names import PARISH_COORDINATES
from repro.similarity.geo import GeoPoint

__all__ = ["Gazetteer", "default_gazetteer"]

# 1 degree of latitude ≈ 111 km; street jitter radius ~2 km.
_STREET_RADIUS_DEG = 2.0 / 111.0


class Gazetteer:
    """Maps parishes and (street, parish) pairs to coordinates."""

    def __init__(self, parish_coordinates: dict[str, GeoPoint]) -> None:
        if not parish_coordinates:
            raise ValueError("gazetteer needs at least one parish")
        self._parishes = {
            name.lower(): point for name, point in parish_coordinates.items()
        }

    def parishes(self) -> list[str]:
        """All known parish names."""
        return sorted(self._parishes)

    def parish_location(self, parish: str) -> GeoPoint | None:
        """Coordinates of the parish centre, if known."""
        return self._parishes.get(parish.lower())

    def street_location(self, street: str, parish: str) -> GeoPoint | None:
        """Deterministic coordinates for a street within a parish.

        The street's offset from the parish centre is derived from a
        stable hash of the street name, so repeated lookups (and lookups
        across processes) agree.
        """
        centre = self.parish_location(parish)
        if centre is None:
            return None
        street = street.strip().lower()
        if not street:
            return centre
        digest = zlib.crc32(f"{parish.lower()}|{street}".encode("utf-8"))
        angle = (digest & 0xFFFF) / 0xFFFF * 2.0 * math.pi
        radius = ((digest >> 16) & 0xFFFF) / 0xFFFF * _STREET_RADIUS_DEG
        return GeoPoint(
            lat=max(-90.0, min(90.0, centre.lat + radius * math.sin(angle))),
            lon=centre.lon + radius * math.cos(angle) / max(
                0.2, math.cos(math.radians(centre.lat))
            ),
        )

    def candidate_locations(self, street: str) -> list[tuple[str, GeoPoint]]:
        """All (parish, location) candidates for a street of unknown
        parish — the ambiguous case the outlier-detection step resolves."""
        out = []
        for parish in self.parishes():
            point = self.street_location(street, parish)
            if point is not None:
                out.append((parish, point))
        return out


def default_gazetteer() -> Gazetteer:
    """Gazetteer over the synthetic Skye parishes and their streets."""
    return Gazetteer(PARISH_COORDINATES)
