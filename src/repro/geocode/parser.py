"""Historical address parsing: "23 high street portree" → components.

Addresses in the registers follow the loose pattern
``[house number] <street words> [parish]``; the parser recognises a
leading number and a trailing known-parish token, leaving the middle as
the street.  Unknown structure degrades gracefully (everything becomes
the street), which matters because parsing must never lose data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ParsedAddress", "parse_address"]


@dataclass(frozen=True)
class ParsedAddress:
    """Components of one address string."""

    house_number: int | None
    street: str
    parish: str | None

    def normalised(self) -> str:
        parts = []
        if self.house_number is not None:
            parts.append(str(self.house_number))
        if self.street:
            parts.append(self.street)
        if self.parish:
            parts.append(self.parish)
        return " ".join(parts)


def parse_address(value: str, known_parishes: list[str] | None = None) -> ParsedAddress:
    """Parse a raw address string.

    ``known_parishes`` (lowercase) enables the trailing-parish rule; when
    omitted, the last token is treated as a parish only if there are at
    least three tokens (number street parish).

    >>> parse_address("23 high street portree", ["portree"])
    ParsedAddress(house_number=23, street='high street', parish='portree')
    """
    tokens = value.strip().lower().split()
    if not tokens:
        return ParsedAddress(house_number=None, street="", parish=None)
    house_number: int | None = None
    if tokens[0].isdigit():
        house_number = int(tokens[0])
        tokens = tokens[1:]
    parish: str | None = None
    if tokens:
        last = tokens[-1]
        if known_parishes is not None:
            if last in known_parishes:
                parish = last
                tokens = tokens[:-1]
        elif len(tokens) >= 2:
            parish = last
            tokens = tokens[:-1]
    return ParsedAddress(
        house_number=house_number,
        street=" ".join(tokens),
        parish=parish,
    )
