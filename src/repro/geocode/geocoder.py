"""Outlier-detection-based geocoding and the distance address comparator.

Following the approach of Kirielle et al. (AusDM 2019): when an address's
parish is known the street geocodes directly; when the parish is missing
or unknown the street has *candidate* locations in several parishes, and
the geocoder picks the candidate closest to the **context location** (the
centroid of the record's other geocodable evidence — here, the
certificate's registration parish) while flagging candidates that are
distance outliers.

``geo_address_comparator`` plugs into the similarity registry and scores
two addresses by geodesic distance, which is how the paper compares IOS
addresses (Section 10).
"""

from __future__ import annotations

from typing import Callable

from repro.geocode.gazetteer import Gazetteer, default_gazetteer
from repro.geocode.parser import parse_address
from repro.similarity.geo import GeoPoint, geo_similarity, haversine_km

__all__ = ["Geocoder", "geo_address_comparator"]


class Geocoder:
    """Assigns coordinates to raw address strings."""

    def __init__(self, gazetteer: Gazetteer | None = None) -> None:
        self.gazetteer = gazetteer or default_gazetteer()
        self._known_parishes = self.gazetteer.parishes()
        self._cache: dict[tuple[str, str | None], GeoPoint | None] = {}

    def geocode(
        self,
        address: str,
        context_parish: str | None = None,
    ) -> GeoPoint | None:
        """Coordinates for ``address``; None when nothing matches.

        Resolution order:

        1. parse the address; if it names a known parish, geocode the
           street within it;
        2. otherwise collect candidate locations of the street across all
           parishes and pick the one nearest ``context_parish`` (dropping
           outlier candidates more than twice the median distance away);
        3. with no street either, fall back to the context parish centre.
        """
        key = (address.strip().lower(), context_parish)
        if key in self._cache:
            return self._cache[key]
        result = self._geocode_uncached(address, context_parish)
        self._cache[key] = result
        return result

    def _geocode_uncached(
        self, address: str, context_parish: str | None
    ) -> GeoPoint | None:
        parsed = parse_address(address, self._known_parishes)
        if parsed.parish is not None:
            point = self.gazetteer.street_location(parsed.street, parsed.parish)
            if point is not None:
                return point
        context = (
            self.gazetteer.parish_location(context_parish)
            if context_parish
            else None
        )
        if parsed.street:
            candidates = self.gazetteer.candidate_locations(parsed.street)
            if candidates:
                if context is None:
                    # No context: ambiguous streets stay ungeocoded rather
                    # than guessing (precision over coverage).
                    return None if len(candidates) > 1 else candidates[0][1]
                distances = sorted(
                    haversine_km(context, point) for _, point in candidates
                )
                median = distances[len(distances) // 2]
                viable = [
                    (parish, point)
                    for parish, point in candidates
                    if haversine_km(context, point) <= max(2.0 * median, 1.0)
                ]
                if viable:
                    return min(
                        viable, key=lambda pp: haversine_km(context, pp[1])
                    )[1]
        return context

    def coverage(self, addresses: list[str]) -> float:
        """Fraction of ``addresses`` that geocode without context."""
        if not addresses:
            return 1.0
        hits = sum(1 for a in addresses if self.geocode(a) is not None)
        return hits / len(addresses)


def geo_address_comparator(
    gazetteer: Gazetteer | None = None,
    half_distance_km: float = 5.0,
) -> Callable[[str, str], float]:
    """An address comparator scoring by geodesic distance.

    Returns a registry-compatible ``(a, b) -> [0, 1]`` function: both
    addresses are geocoded and their distance converted to a similarity
    (0.5 at ``half_distance_km``).  Ungeocodable pairs fall back to token
    overlap so dirty data still compares somehow.

    Register it for IOS-style data::

        registry = default_registry()
        registry.register("address", geo_address_comparator())
    """
    from repro.similarity.jaccard import token_jaccard

    geocoder = Geocoder(gazetteer)

    def compare(a: str, b: str) -> float:
        point_a = geocoder.geocode(a)
        point_b = geocoder.geocode(b)
        if point_a is None or point_b is None:
            return token_jaccard(a, b)
        return geo_similarity(point_a, point_b, half_distance_km=half_distance_km)

    return compare
