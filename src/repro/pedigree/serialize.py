"""Pedigree-graph persistence: JSON save/load.

The offline phase (ER + graph building) runs once on a server; the online
query service loads the resulting pedigree graph at startup.  This module
provides that hand-off: a versioned JSON format holding all entities with
their merged QID values, roles, and the typed relationship edges.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.roles import Role
from repro.pedigree.graph import (
    FATHER_OF,
    MOTHER_OF,
    SPOUSE_OF,
    PedigreeEntity,
    PedigreeGraph,
)

__all__ = ["save_pedigree_graph", "load_pedigree_graph"]

_FORMAT_VERSION = 1
# Only canonical relationships are persisted; Cof and the reverse Sof
# direction are re-derived by add_edge on load.
_CANONICAL_RELS = (MOTHER_OF, FATHER_OF, SPOUSE_OF)


def save_pedigree_graph(graph: PedigreeGraph, path: str | Path) -> Path:
    """Write ``graph`` to ``path`` as JSON; returns the path written."""
    path = Path(path)
    entities = []
    for entity in sorted(graph, key=lambda e: e.entity_id):
        entities.append(
            {
                "id": entity.entity_id,
                "records": list(entity.record_ids),
                "values": {k: list(v) for k, v in entity.values.items()},
                "gender": entity.gender,
                "roles": [role.value for role in entity.roles],
            }
        )
    edges = []
    seen: set[tuple[int, str, int]] = set()
    for entity in graph:
        for rel in _CANONICAL_RELS:
            for target in graph.neighbours(entity.entity_id, rel):
                if rel == SPOUSE_OF:
                    key = (min(entity.entity_id, target), rel,
                           max(entity.entity_id, target))
                else:
                    key = (entity.entity_id, rel, target)
                if key not in seen:
                    seen.add(key)
                    edges.append(list(key))
    payload = {
        "format": "snaps-pedigree-graph",
        "version": _FORMAT_VERSION,
        "entities": entities,
        "edges": edges,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(payload, handle)
    return path


def load_pedigree_graph(path: str | Path) -> PedigreeGraph:
    """Load a graph previously written by :func:`save_pedigree_graph`.

    Raises ``ValueError`` on format/version mismatch.
    """
    path = Path(path)
    with path.open() as handle:
        payload = json.load(handle)
    if payload.get("format") != "snaps-pedigree-graph":
        raise ValueError(f"{path} is not a pedigree-graph file")
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported pedigree-graph version {payload.get('version')}"
        )
    graph = PedigreeGraph()
    for blob in payload["entities"]:
        graph.add_entity(
            PedigreeEntity(
                entity_id=blob["id"],
                record_ids=tuple(blob["records"]),
                values={k: tuple(v) for k, v in blob["values"].items()},
                gender=blob.get("gender"),
                roles=tuple(Role(v) for v in blob.get("roles", [])),
            )
        )
    for source, rel, target in payload["edges"]:
        graph.add_edge(source, rel, target)
    return graph
