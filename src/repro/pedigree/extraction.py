"""Family pedigree extraction: the g-hop neighbourhood of an entity.

Paper Section 8: for a selected entity the pedigree is the subgraph of
G_P within ``g`` hops (default ``g = 2``): one hop reaches parents,
children, and spouses; two hops reach grandparents, grandchildren,
siblings (via parents), and in-laws (via spouses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import fire
from repro.pedigree.graph import PedigreeEntity, PedigreeGraph

__all__ = ["Pedigree", "extract_pedigree"]


@dataclass
class Pedigree:
    """The extracted family neighbourhood of one root entity."""

    root_id: int
    entities: dict[int, PedigreeEntity] = field(default_factory=dict)
    hops: dict[int, int] = field(default_factory=dict)  # entity -> distance
    # Edges restricted to the extracted entities: (source, rel, target).
    edges: list[tuple[int, str, int]] = field(default_factory=list)

    @property
    def root(self) -> PedigreeEntity:
        return self.entities[self.root_id]

    def generation_of(self, entity_id: int) -> int:
        """Signed generation relative to the root (+1 = parents' level).

        Computed from parent/child edges along a BFS; spouses share their
        partner's generation.  Entities unreachable through typed edges
        default to the root's generation.
        """
        return self._generations().get(entity_id, 0)

    def _generations(self) -> dict[int, int]:
        from repro.pedigree.graph import CHILD_OF, FATHER_OF, MOTHER_OF, SPOUSE_OF

        generation = {self.root_id: 0}
        adjacency: dict[int, list[tuple[str, int]]] = {}
        for source, rel, target in self.edges:
            adjacency.setdefault(source, []).append((rel, target))
            # Typed reverse traversal.
            if rel in (MOTHER_OF, FATHER_OF):
                adjacency.setdefault(target, []).append((CHILD_OF, source))
            elif rel == SPOUSE_OF:
                adjacency.setdefault(target, []).append((SPOUSE_OF, source))
        frontier = [self.root_id]
        while frontier:
            node = frontier.pop()
            for rel, neighbour in adjacency.get(node, ()):
                if neighbour in generation:
                    continue
                if rel in (MOTHER_OF, FATHER_OF):
                    generation[neighbour] = generation[node] - 1
                elif rel == CHILD_OF:
                    generation[neighbour] = generation[node] + 1
                else:  # spouse
                    generation[neighbour] = generation[node]
                frontier.append(neighbour)
        return generation

    def __len__(self) -> int:
        return len(self.entities)


def extract_pedigree(
    graph: PedigreeGraph, entity_id: int, generations: int = 2
) -> Pedigree:
    """Extract the ``generations``-hop pedigree of ``entity_id`` from G_P.

    Raises ``KeyError`` for an unknown entity.
    """
    if generations < 0:
        raise ValueError(f"generations must be non-negative, got {generations}")
    fire("pedigree.extract")
    root = graph.entity(entity_id)
    pedigree = Pedigree(root_id=entity_id)
    pedigree.entities[entity_id] = root
    pedigree.hops[entity_id] = 0
    frontier = [entity_id]
    for hop in range(1, generations + 1):
        next_frontier: list[int] = []
        for node in frontier:
            for neighbour in graph.all_neighbours(node):
                if neighbour in pedigree.entities:
                    continue
                pedigree.entities[neighbour] = graph.entity(neighbour)
                pedigree.hops[neighbour] = hop
                next_frontier.append(neighbour)
        frontier = next_frontier
    # Keep every typed edge among the extracted entities (deduplicated;
    # only the canonical direction of each stored edge).
    from repro.pedigree.graph import CHILD_OF, FATHER_OF, MOTHER_OF, SPOUSE_OF

    seen: set[tuple[int, str, int]] = set()
    for source in pedigree.entities:
        for rel in (MOTHER_OF, FATHER_OF, SPOUSE_OF):
            for target in graph.neighbours(source, rel):
                if target not in pedigree.entities:
                    continue
                edge = (source, rel, target)
                if rel == SPOUSE_OF:
                    canonical = (min(source, target), rel, max(source, target))
                else:
                    canonical = edge
                if canonical not in seen:
                    seen.add(canonical)
                    pedigree.edges.append(canonical)
    return pedigree
