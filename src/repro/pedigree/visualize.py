"""Pedigree rendering: ASCII family tree and Graphviz DOT.

Stands in for the paper's web family-tree view (Figures 7/8): the ASCII
tree lists generations top-down (older generations higher, as in the
paper's hierarchical trees) and tags each person with gender and the year
span of their records; the DOT output can be rendered with Graphviz for a
graphical tree.
"""

from __future__ import annotations

from repro.pedigree.extraction import Pedigree
from repro.pedigree.graph import FATHER_OF, MOTHER_OF, SPOUSE_OF

__all__ = ["render_ascii_tree", "render_dot"]


def _label(pedigree: Pedigree, entity_id: int) -> str:
    entity = pedigree.entities[entity_id]
    gender = {"m": "♂", "f": "♀"}.get(entity.gender or "", "·")
    span = entity.year_range()
    years = f" [{span[0]}–{span[1]}]" if span else ""
    marker = " *" if entity_id == pedigree.root_id else ""
    return f"{entity.display_name()} {gender}{years}{marker}"


def render_ascii_tree(pedigree: Pedigree) -> str:
    """Multi-line text rendering, one generation per block, oldest first.

    The root entity is starred.  Spouse pairs are shown joined with ``⚭``;
    parent→child edges are listed under each person.
    """
    by_generation: dict[int, list[int]] = {}
    for entity_id in pedigree.entities:
        by_generation.setdefault(
            pedigree.generation_of(entity_id), []
        ).append(entity_id)
    lines: list[str] = []
    spouse_pairs = {
        (min(s, t), max(s, t))
        for s, rel, t in pedigree.edges
        if rel == SPOUSE_OF
    }
    children_of: dict[int, list[int]] = {}
    for source, rel, target in pedigree.edges:
        if rel in (MOTHER_OF, FATHER_OF):
            children_of.setdefault(source, []).append(target)
    for generation in sorted(by_generation, reverse=True):
        label = {2: "grandparents", 1: "parents", 0: "self & siblings",
                 -1: "children", -2: "grandchildren"}.get(
            generation, f"generation {generation:+d}"
        )
        lines.append(f"=== {label} ===")
        rendered: set[int] = set()
        for entity_id in sorted(by_generation[generation]):
            if entity_id in rendered:
                continue
            spouse = next(
                (
                    b if a == entity_id else a
                    for a, b in spouse_pairs
                    if entity_id in (a, b)
                    and pedigree.generation_of(b if a == entity_id else a)
                    == generation
                ),
                None,
            )
            if spouse is not None and spouse not in rendered:
                lines.append(
                    f"  {_label(pedigree, entity_id)}  ⚭  {_label(pedigree, spouse)}"
                )
                rendered.update((entity_id, spouse))
                kids = sorted(
                    set(children_of.get(entity_id, []))
                    | set(children_of.get(spouse, []))
                )
            else:
                lines.append(f"  {_label(pedigree, entity_id)}")
                rendered.add(entity_id)
                kids = sorted(set(children_of.get(entity_id, [])))
            for kid in kids:
                if kid in pedigree.entities:
                    lines.append(f"      └─ {_label(pedigree, kid)}")
    return "\n".join(lines)


def render_dot(pedigree: Pedigree) -> str:
    """Graphviz DOT source of the pedigree (genders coloured as in the
    paper's Figures 7/8)."""
    lines = [
        "digraph pedigree {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fontname="Helvetica"];',
    ]
    for entity_id, entity in sorted(pedigree.entities.items()):
        colour = {"m": "#cfe2ff", "f": "#ffd6e7"}.get(entity.gender or "", "#eeeeee")
        shape_extra = ', penwidth=2, color="#d62728"' if entity_id == pedigree.root_id else ""
        span = entity.year_range()
        years = f"\\n{span[0]}–{span[1]}" if span else ""
        lines.append(
            f'  e{entity_id} [label="{entity.display_name()}{years}", '
            f'fillcolor="{colour}"{shape_extra}];'
        )
    for source, rel, target in pedigree.edges:
        if rel == SPOUSE_OF:
            lines.append(
                f"  e{source} -> e{target} [dir=none, style=dashed, label=\"⚭\"];"
            )
        else:
            lines.append(f"  e{source} -> e{target};")
    lines.append("}")
    return "\n".join(lines)
