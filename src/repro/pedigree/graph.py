"""Pedigree graph generation (Algorithm 1 of the paper).

The dependency graph's merged nodes associate records with entities; this
module lifts those entities into a graph whose edges are the family
relationships observed on certificates.  Following Algorithm 1, nodes are
added for every entity touched by a merged relational node — and, so that
unlinked people still appear in search results, for every remaining
singleton record's entity as well (the paper's keyword index covers all
entities ``o ∈ O``).

Relationships come from the certificate structure: on a birth certificate
the Bm record's entity is *motherOf* the Bb record's entity, and so on.
``childOf`` is materialised as the reverse of mother/father edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.entities import EntityStore
from repro.data.records import Dataset
from repro.data.roles import Role

__all__ = ["PedigreeEntity", "PedigreeGraph", "build_pedigree_graph"]

# Relationship labels on pedigree edges.
MOTHER_OF = "Mof"
FATHER_OF = "Fof"
SPOUSE_OF = "Sof"
CHILD_OF = "Cof"


@dataclass
class PedigreeEntity:
    """One person in the pedigree graph, with merged QID values.

    ``values`` maps each attribute to all distinct values the entity's
    records carry (a woman appears under maiden and married surnames).
    ``record_ids`` preserves provenance back to the certificates.
    """

    entity_id: int
    record_ids: tuple[int, ...]
    values: dict[str, tuple[str, ...]] = field(default_factory=dict)
    gender: str | None = None
    roles: tuple[Role, ...] = ()

    def first(self, attribute: str) -> str | None:
        """The first (most common) value of ``attribute``, if any."""
        values = self.values.get(attribute)
        return values[0] if values else None

    def display_name(self) -> str:
        """Human-readable "first surname" label for rendering."""
        first = self.first("first_name") or "?"
        surname = self.first("surname") or "?"
        return f"{first} {surname}"

    def year_range(self) -> tuple[int, int] | None:
        """(earliest, latest) event year across the entity's records."""
        years = [int(y) for y in self.values.get("event_year", ()) if y]
        if not years:
            return None
        return (min(years), max(years))


class PedigreeGraph:
    """Entities + typed relationship edges + provenance indices."""

    def __init__(self) -> None:
        self.entities: dict[int, PedigreeEntity] = {}
        # adjacency[entity][relationship] -> set of neighbour entity ids
        self._adjacency: dict[int, dict[str, set[int]]] = {}
        self._entity_of_record: dict[int, int] = {}

    # ------------------------------------------------------------------

    def add_entity(self, entity: PedigreeEntity) -> None:
        self.entities[entity.entity_id] = entity
        self._adjacency.setdefault(entity.entity_id, {})
        for rid in entity.record_ids:
            self._entity_of_record[rid] = entity.entity_id

    def add_edge(self, source: int, relationship: str, target: int) -> None:
        """Directed relationship edge; Sof is stored in both directions."""
        if source not in self.entities or target not in self.entities:
            raise KeyError(f"unknown entity in edge {source}-{relationship}->{target}")
        if source == target:
            return
        self._adjacency[source].setdefault(relationship, set()).add(target)
        if relationship == SPOUSE_OF:
            self._adjacency[target].setdefault(relationship, set()).add(source)
        elif relationship in (MOTHER_OF, FATHER_OF):
            self._adjacency[target].setdefault(CHILD_OF, set()).add(source)

    # ------------------------------------------------------------------

    def entity(self, entity_id: int) -> PedigreeEntity:
        return self.entities[entity_id]

    def entity_of_record(self, record_id: int) -> PedigreeEntity | None:
        entity_id = self._entity_of_record.get(record_id)
        return self.entities.get(entity_id) if entity_id is not None else None

    def neighbours(self, entity_id: int, relationship: str) -> set[int]:
        """Neighbour entity ids under ``relationship``."""
        return set(self._adjacency.get(entity_id, {}).get(relationship, ()))

    def all_neighbours(self, entity_id: int) -> set[int]:
        """Neighbours under any relationship."""
        out: set[int] = set()
        for targets in self._adjacency.get(entity_id, {}).values():
            out |= targets
        return out

    def parents(self, entity_id: int) -> set[int]:
        """Entities that are mother or father of ``entity_id``."""
        return self.neighbours(entity_id, CHILD_OF)

    def children(self, entity_id: int) -> set[int]:
        out = self.neighbours(entity_id, MOTHER_OF) | self.neighbours(
            entity_id, FATHER_OF
        )
        return out

    def spouses(self, entity_id: int) -> set[int]:
        return self.neighbours(entity_id, SPOUSE_OF)

    def __len__(self) -> int:
        return len(self.entities)

    def __iter__(self) -> Iterator[PedigreeEntity]:
        return iter(self.entities.values())

    def n_edges(self) -> int:
        return sum(
            len(targets)
            for adjacency in self._adjacency.values()
            for targets in adjacency.values()
        )


def build_pedigree_graph(dataset: Dataset, store: EntityStore) -> PedigreeGraph:
    """Algorithm 1: lift resolved entities and certificate relationships
    into the pedigree graph.

    Pedigree entity ids are *canonical*: entities are ranked by their
    smallest member record id and numbered 1..K.  ``EntityStore`` ids
    depend on merge order (and therefore on worker/shard/ingest
    schedules); re-ranking here makes the pedigree graph — and every
    artefact serialized from it — a pure function of the dataset and the
    final clustering, which is what lets sharded and incremental resolves
    stay byte-identical to the serial path.
    """
    graph = PedigreeGraph()
    # Pass 1: nodes — one per entity, carrying merged QID values.
    seen_entities: set[int] = set()
    pending: list[PedigreeEntity] = []
    canonical: dict[int, int] = {}  # store entity id -> canonical id
    for record in dataset:
        entity = store.entity_of(record.record_id)
        if entity.entity_id in seen_entities:
            continue
        seen_entities.add(entity.entity_id)
        records = store.records_of(entity)
        values: dict[str, list[str]] = {}
        gender: str | None = None
        roles: list[Role] = []
        for member in records:
            if gender is None:
                gender = member.gender
            if member.role not in roles:
                roles.append(member.role)
            for attribute, value in member.attributes.items():
                if not value:
                    continue
                bucket = values.setdefault(attribute, [])
                if value not in bucket:
                    bucket.append(value)
        pending.append(
            PedigreeEntity(
                entity_id=entity.entity_id,
                record_ids=tuple(sorted(entity.record_ids)),
                # Sorted keys: attribute order must not leak the source
                # dict's insertion history (a CSV round trip alphabetises
                # columns; checkpoint-resume must stay byte-identical).
                values={k: tuple(values[k]) for k in sorted(values)},
                gender=gender,
                roles=tuple(roles),
            )
        )
    pending.sort(key=lambda e: e.record_ids[0])
    for rank, entity in enumerate(pending, start=1):
        canonical[entity.entity_id] = rank
        entity.entity_id = rank
        graph.add_entity(entity)
    # Pass 2: edges — from each certificate's relationship structure
    # (covers statutory certificates and census households alike).
    for cert in dataset.certificates.values():
        for rid_a, relationship, rid_b in cert.relationships():
            entity_a = store.entity_of(rid_a)
            entity_b = store.entity_of(rid_b)
            graph.add_edge(
                canonical[entity_a.entity_id],
                relationship,
                canonical[entity_b.entity_id],
            )
    return graph
