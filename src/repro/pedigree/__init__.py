"""Pedigree graph G_P: entities with family relationships, plus extraction
and visualisation of family pedigrees (paper Sections 5 and 8).

The pedigree graph's nodes are resolved entities carrying the merged QID
values of their records; edges carry the relationships *motherOf*,
*fatherOf*, *spouseOf*, and *childOf* derived from the certificate
structure.  ``extract_pedigree`` returns the g-hop neighbourhood of an
entity (default g=2: grandparents to grandchildren), and the visualiser
renders it as an ASCII tree or Graphviz DOT.
"""

from repro.pedigree.graph import (
    PedigreeEntity,
    PedigreeGraph,
    build_pedigree_graph,
)
from repro.pedigree.extraction import Pedigree, extract_pedigree
from repro.pedigree.visualize import render_ascii_tree, render_dot
from repro.pedigree.gedcom import render_gedcom
from repro.pedigree.serialize import load_pedigree_graph, save_pedigree_graph

__all__ = [
    "PedigreeEntity",
    "PedigreeGraph",
    "build_pedigree_graph",
    "Pedigree",
    "extract_pedigree",
    "render_ascii_tree",
    "render_dot",
    "render_gedcom",
    "save_pedigree_graph",
    "load_pedigree_graph",
]
