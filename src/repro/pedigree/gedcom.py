"""GEDCOM 5.5.1 export of extracted pedigrees.

GEDCOM is the lingua franca of genealogy software; exporting SNAPS
pedigrees lets the Genetics Genealogy Team's output flow into standard
pedigree-drawing and analysis tools.  The export covers individuals
(INDI: name, sex, event-year span) and families (FAM: husband, wife,
children) reconstructed from the pedigree's spouse and parent edges.
"""

from __future__ import annotations

from repro.pedigree.extraction import Pedigree
from repro.pedigree.graph import FATHER_OF, MOTHER_OF, SPOUSE_OF

__all__ = ["render_gedcom"]


def _families(pedigree: Pedigree) -> list[tuple[int | None, int | None, list[int]]]:
    """Group the pedigree's edges into (husband, wife, children) families.

    A family is keyed by its parent couple; single parents form families
    with the other spouse unknown.
    """
    spouse_pairs: set[tuple[int, int]] = set()
    children_of: dict[int, set[int]] = {}
    father_of_child: dict[int, int] = {}
    mother_of_child: dict[int, int] = {}
    for source, rel, target in pedigree.edges:
        if rel == SPOUSE_OF:
            spouse_pairs.add((min(source, target), max(source, target)))
        elif rel == FATHER_OF:
            father_of_child[target] = source
            children_of.setdefault(source, set()).add(target)
        elif rel == MOTHER_OF:
            mother_of_child[target] = source
            children_of.setdefault(source, set()).add(target)
    families: dict[tuple[int | None, int | None], list[int]] = {}
    seen_children: set[int] = set()
    for child in sorted(set(father_of_child) | set(mother_of_child)):
        father = father_of_child.get(child)
        mother = mother_of_child.get(child)
        families.setdefault((father, mother), []).append(child)
        seen_children.add(child)
    # Childless couples still form families.
    for a, b in sorted(spouse_pairs):
        ea = pedigree.entities.get(a)
        eb = pedigree.entities.get(b)
        if ea is None or eb is None:
            continue
        husband = a if (ea.gender or "m") == "m" else b
        wife = b if husband == a else a
        if (husband, wife) not in families:
            families.setdefault((husband, wife), [])
    out = []
    for (father, mother), children in sorted(
        families.items(), key=lambda kv: (kv[0][0] or 0, kv[0][1] or 0)
    ):
        out.append((father, mother, sorted(children)))
    return out


def _gedcom_name(entity) -> str:
    first = (entity.first("first_name") or "Unknown").title()
    surname = (entity.first("surname") or "Unknown").title()
    return f"{first} /{surname}/"


def render_gedcom(pedigree: Pedigree, source_name: str = "SNAPS") -> str:
    """GEDCOM 5.5.1 text for ``pedigree``.

    Entity ids become ``@I<n>@`` individual ids; families get ``@F<n>@``.
    Years are exported as the entity's earliest event year (an
    approximation — certificates record events, not birth dates, except
    for Bb records).
    """
    lines = [
        "0 HEAD",
        "1 SOUR " + source_name,
        "1 GEDC",
        "2 VERS 5.5.1",
        "2 FORM LINEAGE-LINKED",
        "1 CHAR UTF-8",
    ]
    families = _families(pedigree)
    # Family memberships per individual.
    fams_of: dict[int, list[str]] = {}
    famc_of: dict[int, str] = {}
    for index, (father, mother, children) in enumerate(families, start=1):
        fam_id = f"@F{index}@"
        for parent in (father, mother):
            if parent is not None:
                fams_of.setdefault(parent, []).append(fam_id)
        for child in children:
            famc_of[child] = fam_id
    for entity_id in sorted(pedigree.entities):
        entity = pedigree.entities[entity_id]
        lines.append(f"0 @I{entity_id}@ INDI")
        lines.append(f"1 NAME {_gedcom_name(entity)}")
        if entity.gender in ("m", "f"):
            lines.append(f"1 SEX {entity.gender.upper()}")
        span = entity.year_range()
        if span is not None:
            lines.append("1 BIRT")
            lines.append(f"2 DATE ABT {span[0]}")
        for fam_id in fams_of.get(entity_id, []):
            lines.append(f"1 FAMS {fam_id}")
        if entity_id in famc_of:
            lines.append(f"1 FAMC {famc_of[entity_id]}")
    for index, (father, mother, children) in enumerate(families, start=1):
        lines.append(f"0 @F{index}@ FAM")
        if father is not None:
            lines.append(f"1 HUSB @I{father}@")
        if mother is not None:
            lines.append(f"1 WIFE @I{mother}@")
        for child in children:
            lines.append(f"1 CHIL @I{child}@")
    lines.append("0 TRLR")
    return "\n".join(lines)
