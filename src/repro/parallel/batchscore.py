"""Vectorised Equation (1) scoring, bit-identical to the scalar scorer.

:func:`batch_atomic_similarity` evaluates
``PairScorer._atomic_similarity_uncached`` for a whole chunk of nodes at
once.  Byte-identity with the scalar path is not approximate — it holds
because every floating-point operation is mirrored exactly:

* the scalar code accumulates category sums with Python's left-to-right
  ``sum()`` over attributes in schema order; here each attribute column
  is added to an accumulator in the same order (absent attributes add
  ``+0.0``, which is exact for the non-negative terms involved);
* divisions and multiplications are elementwise IEEE-754 double ops —
  the same operations the scalar expressions perform, in the same
  association order;
* temporal-decay factors (``0.5 ** (gap / half_life)``) are computed by
  the *Python* ``**`` operator per distinct gap, never by ``np.power``
  (whose libm may differ by 1 ulp), and broadcast by lookup.

A regression test asserts exact equality against the scalar scorer over
a full synthetic dataset.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import AttributeCategory, Schema

__all__ = ["batch_atomic_similarity"]

# Per-attribute node state codes used by the worker chunk loop.
STATE_ABSENT = 0  # attribute missing on at least one record: excluded
STATE_MATCHED = 1  # atomic node admitted: (similarity, weight 1.0)
STATE_PRESENT = 2  # both present, below t_a: (0.0, decaying weight)


def batch_atomic_similarity(
    schema: Schema,
    half_life: float | None,
    gaps: list[int],
    sims: list[list[float]],
    states: list[list[int]],
) -> np.ndarray:
    """Equation (1) for ``n`` nodes at once.

    ``sims[j][i]`` / ``states[j][i]`` describe attribute ``j`` (index
    into ``schema.names()``) of node ``i``; ``gaps[i]`` is the node's
    event-year gap (only consulted when ``half_life`` is set).
    """
    n = len(gaps)
    if half_life is None:
        decay = None
    else:
        # Python pow per *distinct* gap keeps bit-parity with the scalar
        # path and costs next to nothing (gaps are small integers).
        by_gap: dict[int, float] = {}
        for gap in gaps:
            if gap not in by_gap:
                by_gap[gap] = 0.5 ** (gap / half_life)
        decay = np.array([by_gap[gap] for gap in gaps], dtype=np.float64)
    index_of = {name: j for j, name in enumerate(schema.names())}
    weighted_sum = np.zeros(n, dtype=np.float64)
    weight_total = np.zeros(n, dtype=np.float64)
    for category in AttributeCategory:
        names = schema.names_in(category)
        if not names:
            continue
        den = np.zeros(n, dtype=np.float64)
        num = np.zeros(n, dtype=np.float64)
        count = np.zeros(n, dtype=np.float64)
        for name in names:
            j = index_of[name]
            state = np.asarray(states[j], dtype=np.int8)
            sim = np.asarray(sims[j], dtype=np.float64)
            matched = state == STATE_MATCHED
            present = state == STATE_PRESENT
            if category is AttributeCategory.EXTRA and decay is not None:
                present_weight = decay
            else:
                present_weight = 1.0
            weight = np.where(
                matched, 1.0, np.where(present, present_weight, 0.0)
            )
            den = den + weight
            num = num + np.where(matched, sim, 0.0) * weight
            count = count + (state != STATE_ABSENT)
        active = den > 0.0
        category_sim = np.zeros(n, dtype=np.float64)
        np.divide(num, den, out=category_sim, where=active)
        ratio = np.zeros(n, dtype=np.float64)
        np.divide(den, count, out=ratio, where=active)
        category_weight = schema.weight(category) * ratio
        weighted_sum = weighted_sum + np.where(
            active, category_weight * category_sim, 0.0
        )
        weight_total = weight_total + np.where(active, category_weight, 0.0)
    out = np.zeros(n, dtype=np.float64)
    np.divide(weighted_sum, weight_total, out=out, where=weight_total != 0.0)
    return out
