"""Deterministic chunk execution over an optional process pool.

``ChunkRunner`` maps worker chunk functions over task lists and returns
results **in submission order** — the merge step's determinism comes
from here, not from any property of the pool.  With ``workers == 1``
the chunks run in-process (the parallel pipeline without fan-out);
with ``workers >= 2`` they run in a ``ProcessPoolExecutor``.

Payload shipping prefers the ``fork`` start method: the payload is
installed in this process's worker module *before* the pool is created,
so children inherit it without pickling the dataset.  Where only
``spawn`` is available the payload travels once per worker through the
pool initializer.

Pool execution is *supervised* (:mod:`repro.supervise`): every chunk
attempt heartbeats, hung attempts are killed at the task deadline, a
crashed worker triggers a pool rebuild that resubmits only incomplete
chunks, and a chunk failing its whole retry budget is quarantined with
an artifact.  Recovery never changes output — chunks are pure functions
of their inputs and results still merge in submission order.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable

from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.trace import Trace
from repro.parallel import worker
from repro.parallel.config import ParallelConfig, available_cpus
from repro.supervise import SupervisedExecutor, SuperviseConfig

__all__ = ["ChunkRunner", "make_tasks"]


def make_tasks(
    items: list,
    workers: int,
    fingerprint: str,
    parallel: ParallelConfig,
) -> list[dict]:
    """Split ``items`` into contiguous, deterministic chunk tasks.

    Chunk boundaries depend only on the item count and the runner shape;
    results are merged back in chunk order, so chunking never influences
    output — only load balance.
    """
    if not items:
        return []
    target = max(1, workers * parallel.chunks_per_worker)
    size = max(parallel.min_chunk_size, -(-len(items) // target))
    return [
        {
            "chunk": index,
            "fingerprint": fingerprint,
            "pairs": items[offset : offset + size],
        }
        for index, offset in enumerate(range(0, len(items), size))
    ]


class ChunkRunner:
    """Runs chunk tasks in-process or across a process pool."""

    def __init__(
        self,
        payload: dict,
        workers: int,
        trace: Trace | None = None,
        metrics: MetricsRegistry | None = None,
        oversubscribe: bool = False,
        supervise: SuperviseConfig | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"ChunkRunner needs workers >= 1, got {workers}")
        self.payload = payload
        self.workers = workers
        # A CPU-bound pool gains nothing from more processes than cores —
        # clamp unless explicitly asked to oversubscribe.  Pool size never
        # affects output (results merge in submission order).
        self.pool_workers = (
            workers if oversubscribe else min(workers, available_cpus())
        )
        self.trace = trace if trace is not None else Trace.disabled()
        self.metrics = metrics
        # A silently skipped chunk would break byte-identical output, so
        # the resolve paths always abort on quarantine regardless of the
        # requested policy.
        supervise = supervise if supervise is not None else SuperviseConfig.from_env()
        if supervise.on_quarantine != "abort":
            supervise = replace(supervise, on_quarantine="abort")
        self.supervise = supervise
        self._executor: SupervisedExecutor | None = None

    def __enter__(self) -> "ChunkRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _make_pool(self) -> ProcessPoolExecutor:
        """Build one pool generation (also the supervisor's rebuild hook)."""
        if "fork" in multiprocessing.get_all_start_methods():
            # Children inherit the payload through fork: install it
            # in this process's worker module first, ship nothing.
            worker.set_payload(self.payload)
            return ProcessPoolExecutor(
                max_workers=self.pool_workers,
                mp_context=multiprocessing.get_context("fork"),
            )
        return ProcessPoolExecutor(  # pragma: no cover - non-fork platforms
            max_workers=self.pool_workers,
            mp_context=multiprocessing.get_context(),
            initializer=worker.init_worker,
            initargs=(self.payload,),
        )

    def _ensure_executor(self) -> SupervisedExecutor:
        if self._executor is None:
            self._executor = SupervisedExecutor(
                self._make_pool,
                self.supervise,
                metrics=self.metrics,
                label="chunk",
                task_name=lambda task, index: f"chunk {task['chunk']}",
            )
        return self._executor

    def map(self, fn: Callable[[dict], dict], tasks: list[dict], label: str) -> list[dict]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        When tracing/metrics are live, each shipped task carries the
        parent's serialised :class:`TraceContext` plus a ``collect``
        flag; workers answer with a detached span and a metrics-delta
        registry, which :meth:`_absorb` grafts under the chunk's wait
        span and folds into the parent registry — one coherent span
        tree and one registry regardless of worker count.
        """
        ctx = self.trace.context(label=label)
        ctx_dict = ctx.to_dict() if ctx is not None else None
        collect = self.metrics is not None
        if ctx_dict is not None or collect:
            tasks = [
                {**task, "ctx": ctx_dict, "collect": collect} for task in tasks
            ]
        results: list[dict] = []
        if self.pool_workers == 1:
            worker.set_payload(self.payload)
            for task in tasks:
                with self.trace.span(f"parallel.{label}.chunk{task['chunk']}") as wait:
                    result = fn(task)
                self._absorb(result, wait)
                results.append(result)
            return results
        executor = self._ensure_executor()
        outputs = executor.map(fn, tasks, label)
        for task, result in zip(tasks, outputs):
            # The wait happened inside the supervisor; the span is kept
            # (near-zero duration) so the trace tree keeps its per-chunk
            # wait nodes with the worker span grafted beneath each.
            with self.trace.span(f"parallel.{label}.chunk{task['chunk']}") as wait:
                pass
            self._absorb(result, wait)
            results.append(result)
        return results

    def _absorb(self, result: dict, wait_span) -> None:
        """Merge one chunk result's telemetry into the parent's."""
        node = result.pop("span", None)
        if node is not None:
            self.trace.attach(node, parent=wait_span)
        wmetrics = result.pop("wmetrics", None)
        if self.metrics is not None:
            if wmetrics is not None:
                self.metrics.merge(wmetrics)
            self.metrics.inc("parallel.chunks")
            self.metrics.observe(
                "parallel.chunk_seconds", result["elapsed"], LATENCY_BUCKETS_S
            )
