"""Worker-side chunk functions for parallel blocking and pair scoring.

A worker process owns one module-level payload (dataset + config +
fingerprint) and lazily builds its scoring context from it once —
comparator registry, name-frequency index, a column-oriented record
table for vectorised predicates.  Under a ``fork`` start method the
payload is inherited from the parent for free; under ``spawn`` it is
shipped once via the pool initializer.  Either way the per-chunk task
messages carry only pair-id lists plus the config fingerprint, which
every chunk verifies against its context (a stale worker must fail
loudly, never score against the wrong configuration).

The pair filters and constraint verdicts here are numpy boolean masks
over integer record columns (certificate ids, role codes, gender codes,
birth-year bounds) — integer comparisons are exact, so the masks equal
the serial per-pair predicates decision for decision.  String-valued
work (comparator calls) stays in Python against the exact serial
comparator registry, memoised per distinct value pair.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.blocking.candidates import roles_linkable
from repro.core.scoring import NameFrequencyIndex
from repro.data.roles import CENSUS_ROLES, SINGLETON_ROLES, Role
from repro.obs.metrics import LATENCY_BUCKETS_S, MetricsRegistry
from repro.obs.trace import context_span
from repro.parallel.batchscore import batch_atomic_similarity
from repro.similarity.registry import registry_for_config

__all__ = [
    "filter_pairs_chunk",
    "score_pairs_chunk",
    "set_payload",
    "init_worker",
]

# Rejection counters in the order generate_candidate_pairs applies them.
REJECT_KEYS = ("same_cert", "role", "same_census", "gender", "temporal")

_PAYLOAD: dict | None = None
_CONTEXT: "_Context | None" = None


def set_payload(payload: dict | None) -> None:
    """Install the worker payload (idempotent on the same object)."""
    global _PAYLOAD, _CONTEXT
    if payload is _PAYLOAD:
        return
    _PAYLOAD = payload
    _CONTEXT = None


def init_worker(payload: dict) -> None:
    """Pool initializer for start methods that cannot inherit globals."""
    set_payload(payload)


class _RecordTable:
    """Record attributes as integer columns, for vectorised predicates.

    Gender values and roles are dictionary-encoded; equality between
    codes is equality between the original values, so every mask below
    decides exactly what the serial per-record predicate decides.
    Building the table touches each record's ``birth_range()`` once,
    which (like the serial filters) requires ``event_year`` — a record
    without one fails here with the same ``ValueError`` the serial
    filter would raise on its first pair.
    """

    def __init__(self, dataset, config) -> None:
        roles = list(Role)
        role_of = {role: code for code, role in enumerate(roles)}
        n_roles = len(roles)
        self.linkable = np.zeros((n_roles, n_roles), dtype=bool)
        for i, role_a in enumerate(roles):
            for j, role_b in enumerate(roles):
                self.linkable[i, j] = roles_linkable(role_a, role_b)
        self.singleton_role = np.array(
            [role in SINGLETON_ROLES for role in roles], dtype=bool
        )
        self.census_role = np.array(
            [role in CENSUS_ROLES for role in roles], dtype=bool
        )
        records = list(dataset)
        n = len(records)
        attributes = config.schema.names()
        self.index: dict[int, int] = {}
        self.cert = np.empty(n, dtype=np.int64)
        self.role = np.empty(n, dtype=np.int64)
        self.gender = np.empty(n, dtype=np.int64)
        self.year = np.empty(n, dtype=np.int64)
        self.lo = np.empty(n, dtype=np.int64)
        self.hi = np.empty(n, dtype=np.int64)
        # Raw attribute values per schema attribute, aligned to rows.
        self.values: list[list[str | None]] = [[None] * n for _ in attributes]
        gender_codes: dict[str, int] = {}
        for i, record in enumerate(records):
            self.index[record.record_id] = i
            self.cert[i] = record.cert_id
            self.role[i] = role_of[record.role]
            gender = record.gender
            if gender is None:
                self.gender[i] = -1
            else:
                code = gender_codes.get(gender)
                if code is None:
                    code = gender_codes[gender] = len(gender_codes)
                self.gender[i] = code
            self.year[i] = record.event_year
            self.lo[i], self.hi[i] = record.birth_range()
            for j, attribute in enumerate(attributes):
                self.values[j][i] = record.get(attribute)
        self.freq: np.ndarray | None = None
        # Row lookup: an O(1) array when record ids are reasonably dense,
        # else the dict.
        max_rid = max(self.index) if self.index else 0
        self._lut: np.ndarray | None = None
        if 0 <= min(self.index, default=0) and max_rid < 8 * n + 1024:
            lut = np.full(max_rid + 1, -1, dtype=np.int64)
            for rid, row in self.index.items():
                lut[rid] = row
            self._lut = lut

    def rows(self, pairs: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
        """Row indices (array_a, array_b) for a list of record-id pairs."""
        pair_arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        if self._lut is not None:
            return self._lut[pair_arr[:, 0]], self._lut[pair_arr[:, 1]]
        index = self.index
        ia = np.fromiter(
            (index[rid] for rid, _ in pairs), dtype=np.int64, count=len(pairs)
        )
        ib = np.fromiter(
            (index[rid] for _, rid in pairs), dtype=np.int64, count=len(pairs)
        )
        return ia, ib


class _Context:
    """Per-process scoring context, built once from the payload."""

    def __init__(self, payload: dict) -> None:
        self.fingerprint: str = payload["fingerprint"]
        self.dataset = payload["dataset"]
        self.config = payload["config"]
        self.registry = registry_for_config(self.config)
        self.attributes: list[str] = self.config.schema.names()
        # Persist across chunks: distinct value pairs and name-frequency
        # sums repeat heavily between chunks of the same run.
        self.sim_cache: dict[tuple[int, str, str], float] = {}
        self.sd_table: dict[int, float] = {}
        self._frequencies: NameFrequencyIndex | None = None
        self._table: _RecordTable | None = None

    @property
    def frequencies(self) -> NameFrequencyIndex:
        if self._frequencies is None:
            self._frequencies = NameFrequencyIndex(self.dataset)
        return self._frequencies

    @property
    def table(self) -> _RecordTable:
        if self._table is None:
            self._table = _RecordTable(self.dataset, self.config)
        return self._table


def _context(fingerprint: str) -> _Context:
    global _CONTEXT
    if _PAYLOAD is None:
        raise RuntimeError("worker has no payload installed")
    if _CONTEXT is None:
        _CONTEXT = _Context(_PAYLOAD)
    if _CONTEXT.fingerprint != fingerprint:
        raise RuntimeError(
            f"task fingerprint {fingerprint!r} does not match worker "
            f"payload {_CONTEXT.fingerprint!r}"
        )
    return _CONTEXT


def _finish(task: dict, result: dict, label: str, counters: dict[str, int]) -> dict:
    """Attach the telemetry the parent asked for to a chunk result.

    When the task carries a trace context, a detached ``worker.<label>``
    span (pid/chunk/pairs annotated, elapsed = chunk wall time) rides
    home as a dict; when ``collect`` is set, a fresh
    :class:`MetricsRegistry` of this chunk's deltas does too.  The
    parent grafts/merges both — see ``ChunkRunner._absorb``.
    """
    elapsed = result["elapsed"]
    ctx = task.get("ctx")
    if ctx is not None:
        span = context_span(
            ctx,
            f"worker.{label}.chunk{task['chunk']}",
            chunk=task["chunk"],
            pairs=len(task["pairs"]),
        )
        span.elapsed = elapsed
        result["span"] = span.as_dict()
    if task.get("collect"):
        deltas = MetricsRegistry()
        for name, n in counters.items():
            if n:
                deltas.inc(name, n)
        deltas.observe("parallel.worker.chunk_seconds", elapsed, LATENCY_BUCKETS_S)
        result["wmetrics"] = deltas
    return result


def _pair_masks(table: _RecordTable, ia: np.ndarray, ib: np.ndarray, slack: int):
    """The five filter rejection masks, in serial application order."""
    role_a, role_b = table.role[ia], table.role[ib]
    gender_a, gender_b = table.gender[ia], table.gender[ib]
    return (
        table.cert[ia] == table.cert[ib],
        ~table.linkable[role_a, role_b],
        table.census_role[role_a]
        & table.census_role[role_b]
        & (table.year[ia] == table.year[ib]),
        (gender_a >= 0) & (gender_b >= 0) & (gender_a != gender_b),
        (table.lo[ia] - slack > table.hi[ib])
        | (table.lo[ib] - slack > table.hi[ia]),
    )


def filter_pairs_chunk(task: dict) -> dict:
    """Apply the candidate-pair filters to one chunk of raw block pairs.

    Mirrors :func:`repro.blocking.candidates.generate_candidate_pairs`
    filter for filter, in order, returning the surviving pairs and the
    per-filter rejection counts the serial path would have emitted.
    """
    ctx = _context(task["fingerprint"])
    started = time.perf_counter()
    pairs = task["pairs"]
    rejected = dict.fromkeys(REJECT_KEYS, 0)
    kept: list[tuple[int, int]] = []
    if pairs:
        table = ctx.table
        ia, ib = table.rows(pairs)
        masks = _pair_masks(table, ia, ib, ctx.config.temporal_slack_years)
        alive = np.ones(len(pairs), dtype=bool)
        for name, mask in zip(REJECT_KEYS, masks):
            hits = mask & alive
            rejected[name] = int(hits.sum())
            alive &= ~mask
        kept = [pairs[i] for i in np.nonzero(alive)[0]]
    result = {
        "chunk": task["chunk"],
        "elapsed": time.perf_counter() - started,
        "kept": kept,
        "rejected": rejected,
    }
    return _finish(
        task,
        result,
        "filter",
        {
            "parallel.worker.pairs_in": len(pairs),
            "parallel.worker.pairs_kept": len(kept),
        },
    )


def score_pairs_chunk(task: dict) -> dict:
    """Build node specs and scores for one chunk of candidate pairs.

    For each pair, in order: the relational-node spec (group key + the
    admitted atomic value pairs, exactly as ``build_dependency_graph``
    would create them), the initial ``s_a``/``s_d`` scores, and the
    singleton-state constraint verdict.  Newly computed comparator
    outputs are returned for the main process to seed
    ``PairScorer._sim_cache``.

    The verdict is 1 (record-level reject) or 0 (mergeable); the
    entity-level verdict 2 cannot arise at build time, because for
    single-record entities every check ``entities_compatible`` performs
    (certificate disjointness, singleton-role counts, gender consensus,
    birth-interval overlap, census years, role linkability) degenerates
    to the corresponding record-level check — the two verdicts coincide
    until a merge grows an entity.
    """
    ctx = _context(task["fingerprint"])
    started = time.perf_counter()
    config = ctx.config
    registry = ctx.registry
    attributes = ctx.attributes
    t_a = config.atomic_threshold
    half_life = config.temporal_decay_half_life
    slack = config.temporal_slack_years
    sim_cache = ctx.sim_cache
    frequencies = ctx.frequencies
    table = ctx.table
    pairs = task["pairs"]
    n_pairs = len(pairs)
    new_sims: dict[tuple[int, str, str], float] = {}
    n_attrs = len(attributes)
    sims: list[list[float]] = [[] for _ in range(n_attrs)]
    states: list[list[int]] = [[] for _ in range(n_attrs)]
    specs: list[tuple] = []
    if n_pairs:
        ia, ib = table.rows(pairs)
        # Constraint verdicts (ConstraintChecker.records_compatible as
        # masks): the five filter predicates plus the singleton-role
        # check.  ``propagate`` adds nothing here — see the docstring.
        reject = np.zeros(n_pairs, dtype=bool)
        for mask in _pair_masks(table, ia, ib, slack):
            reject |= mask
        role_a = table.role[ia]
        reject |= table.singleton_role[role_a] & (role_a == table.role[ib])
        levels = reject.astype(np.int64).tolist()
        if table.freq is None:
            dataset = ctx.dataset
            freq = np.empty(len(table.index), dtype=np.int64)
            for rid, row in table.index.items():
                freq[row] = frequencies.frequency(dataset.record(rid))
            table.freq = freq
        freq_sums = (table.freq[ia] + table.freq[ib]).tolist()
        if half_life is not None:
            gaps = np.abs(table.year[ia] - table.year[ib]).tolist()
        else:
            gaps = [0] * n_pairs
        rows_a = ia.tolist()
        rows_b = ib.tolist()
        certs_a = table.cert[ia].tolist()
        certs_b = table.cert[ib].tolist()
        values = table.values
        for k in range(n_pairs):
            rid_a, rid_b = pairs[k]
            row_a, row_b = rows_a[k], rows_b[k]
            cert_a, cert_b = certs_a[k], certs_b[k]
            group = (cert_a, cert_b) if cert_a <= cert_b else (cert_b, cert_a)
            atoms: list[tuple[int, str, str, float]] = []
            for j in range(n_attrs):
                value_a = values[j][row_a]
                value_b = values[j][row_b]
                if value_a is None or value_b is None:
                    sims[j].append(0.0)
                    states[j].append(0)
                    continue
                if value_a <= value_b:
                    key = (j, value_a, value_b)
                else:
                    key = (j, value_b, value_a)
                similarity = sim_cache.get(key)
                if similarity is None:
                    similarity = (
                        registry.compare(attributes[j], value_a, value_b) or 0.0
                    )
                    sim_cache[key] = similarity
                    new_sims[key] = similarity
                if similarity >= t_a:
                    atoms.append((j, value_a, value_b, similarity))
                    sims[j].append(similarity)
                    states[j].append(1)
                else:
                    sims[j].append(0.0)
                    states[j].append(2)
            specs.append((rid_a, rid_b, group[0], group[1], atoms))
    else:
        levels = []
        freq_sums = []
        gaps = []
    s_a = batch_atomic_similarity(config.schema, half_life, gaps, sims, states)
    # s_d is a lookup: one exact Python-math evaluation per distinct
    # frequency sum (mirroring disambiguation_similarity's expression).
    n_total = max(2, frequencies.total_records)
    sd_table = ctx.sd_table
    s_d: list[float] = []
    for freq in freq_sums:
        value = sd_table.get(freq)
        if value is None:
            value = min(1.0, max(0.0, math.log2(n_total / freq) / math.log2(n_total)))
            sd_table[freq] = value
        s_d.append(value)
    result = {
        "chunk": task["chunk"],
        "elapsed": time.perf_counter() - started,
        "specs": specs,
        "s_a": s_a.tolist(),
        "s_d": s_d,
        "valid": levels,
        "sims": new_sims,
    }
    return _finish(
        task,
        result,
        "score",
        {
            "parallel.worker.pairs_scored": n_pairs,
            "parallel.worker.sim_cache_misses": len(new_sims),
        },
    )
