"""Parallel graph construction and shared-similarity precompute.

The parallel path does not change *what* the resolver computes — it
changes *when* and *where*.  Candidate pairs are filtered and scored in
deterministic chunks (optionally across a process pool), then merged in
canonical pair order into exactly the dependency graph
``build_dependency_graph`` would produce, plus three seed tables:

* the deduped comparator outputs for every ``(attribute, value_a,
  value_b)`` the pairs imply — seeded into ``PairScorer._sim_cache`` so
  bootstrap and iterative merging never recompute a comparator;
* each node's initial ``s_a``/``s_d`` — seeded into the scorer's
  node-score cache (``s_a`` invalidated if PROP-A later re-points the
  node's atomic evidence);
* each pair's singleton-state constraint verdict — seeded into
  :class:`~repro.core.constraints.ConstraintChecker` so merge-time
  validation of still-singleton endpoints is a dict lookup.

Because the bootstrap/merge loops themselves run unchanged, in the same
order, on identical numbers, entity ids and checkpoint states stay
byte-identical to a serial run regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.blocking.base import block_key_pairs
from repro.blocking.candidates import CandidatePair
from repro.core.config import SnapsConfig
from repro.core.dependency_graph import (
    AtomicNode,
    DependencyGraph,
    RelationalNode,
    _group_edges,
)
from repro.data.records import Dataset
from repro.data.roles import Role
from repro.obs.metrics import MetricsRegistry, merge_counts
from repro.obs.trace import Trace
from repro.parallel.config import ParallelConfig
from repro.parallel.pool import ChunkRunner, make_tasks
from repro.parallel.worker import filter_pairs_chunk, score_pairs_chunk

__all__ = [
    "ParallelSeeds",
    "build_payload",
    "parallel_candidate_pairs",
    "parallel_graph_and_seeds",
]


@dataclass
class ParallelSeeds:
    """Precomputed tables the resolver seeds its scorer/checker with."""

    sim_table: dict[tuple[str, str, str], float] = field(default_factory=dict)
    node_scores: dict[tuple[int, int], list] = field(default_factory=dict)
    pair_validity: dict[tuple[int, int], int] = field(default_factory=dict)


def build_payload(dataset: Dataset, config: SnapsConfig) -> dict:
    """The per-run worker payload plus its defensive fingerprint."""
    # Imported lazily: repro.store pulls in the resolver at import time.
    from repro.store.manifest import config_fingerprint

    fingerprint = f"{config_fingerprint(config)}:{dataset.name}:{len(dataset)}"
    return {"dataset": dataset, "config": config, "fingerprint": fingerprint}


def parallel_candidate_pairs(
    dataset: Dataset,
    blocker,
    config: SnapsConfig,
    workers: int,
    parallel: ParallelConfig,
    roles: list[Role] | None = None,
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[CandidatePair]:
    """Blocking with vectorised signatures and chunked pair filtering.

    Emits the same pairs, in the same order, with the same metric
    totals, as :func:`repro.blocking.candidates.generate_candidate_pairs`
    over the same blocker stack.
    """
    if roles is None:
        records = list(dataset)
    else:
        records = dataset.records_with_role(roles)
    prepare = getattr(blocker, "prepare", None)
    if prepare is not None:
        prepare(records)
    raw_pairs = list(block_key_pairs(records, blocker, metrics=metrics))
    payload = build_payload(dataset, config)
    tasks = make_tasks(raw_pairs, workers, payload["fingerprint"], parallel)
    with ChunkRunner(
        payload,
        workers,
        trace=trace,
        metrics=metrics,
        oversubscribe=parallel.oversubscribe,
        supervise=parallel.supervise,
    ) as runner:
        results = runner.map(filter_pairs_chunk, tasks, "filter")
    pairs: list[CandidatePair] = []
    rejected: dict[str, int] = {}
    for result in results:
        pairs.extend(CandidatePair(a, b) for a, b in result["kept"])
        for name, count in result["rejected"].items():
            rejected[name] = rejected.get(name, 0) + count
    merge_counts(metrics, rejected, prefix="blocking.rejected_")
    if metrics is not None:
        metrics.inc("blocking.candidate_pairs", len(pairs))
        total = len(records) * (len(records) - 1) // 2
        if total:
            metrics.set_gauge(
                "blocking.reduction_ratio", 1.0 - len(pairs) / total
            )
    return pairs


def parallel_graph_and_seeds(
    dataset: Dataset,
    candidate_pairs: list[CandidatePair],
    config: SnapsConfig,
    workers: int,
    parallel: ParallelConfig,
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
) -> tuple[DependencyGraph, ParallelSeeds]:
    """Chunk-scored G_D construction plus scorer/checker seed tables.

    The returned graph is structurally identical to
    :func:`build_dependency_graph` on the same inputs: chunk results are
    merged in chunk order (chunks partition the pair list contiguously),
    so nodes, groups, and edges appear in the serial insertion order.
    """
    payload = build_payload(dataset, config)
    pair_keys = [(pair.rid_a, pair.rid_b) for pair in candidate_pairs]
    tasks = make_tasks(pair_keys, workers, payload["fingerprint"], parallel)
    with ChunkRunner(
        payload,
        workers,
        trace=trace,
        metrics=metrics,
        oversubscribe=parallel.oversubscribe,
        supervise=parallel.supervise,
    ) as runner:
        results = runner.map(score_pairs_chunk, tasks, "score")
    attributes = config.schema.names()
    graph = DependencyGraph(dataset)
    seeds = ParallelSeeds()
    # Intern atomic nodes: the same (attribute, value, value) triple is
    # shared by many record pairs, and AtomicNode is frozen — sharing
    # one instance is observationally identical to fresh allocations.
    atomic_pool: dict[tuple[int, str, str], AtomicNode] = {}
    for result in results:
        for spec, s_a, s_d, level in zip(
            result["specs"], result["s_a"], result["s_d"], result["valid"]
        ):
            rid_a, rid_b, group_lo, group_hi, atoms = spec
            node = RelationalNode(
                rid_a=rid_a, rid_b=rid_b, group=(group_lo, group_hi)
            )
            for j, value_a, value_b, similarity in atoms:
                pool_key = (j, value_a, value_b)
                atomic = atomic_pool.get(pool_key)
                if atomic is None:
                    atomic = AtomicNode(
                        attributes[j], value_a, value_b, similarity
                    )
                    atomic_pool[pool_key] = atomic
                node.atomic[attributes[j]] = atomic
            graph.add_node(node)
            key = (rid_a, rid_b)
            seeds.node_scores[key] = [s_a, s_d]
            seeds.pair_validity[key] = level
        for (j, lo, hi), similarity in result["sims"].items():
            seeds.sim_table[(attributes[j], lo, hi)] = similarity
    for group in graph.groups.values():
        _group_edges(graph, group)
    return graph, seeds
