"""Parallel, vectorised execution substrate for offline resolution.

Three independently useful accelerations, composed by the resolver when
a :class:`ParallelConfig` asks for workers:

1. **Vectorised MinHash** — all blocking signatures in one numpy pass
   (:meth:`repro.blocking.minhash.MinHasher.signature_matrix`), rows
   bit-identical to the scalar path;
2. **Shared similarity precompute** — distinct ``(attribute, value_a,
   value_b)`` comparator calls deduped across all candidate pairs and
   seeded into every scorer cache;
3. **Process-pool pair scoring** — candidate pairs filtered and scored
   in deterministic chunks across a ``ProcessPoolExecutor``, merged in
   canonical order.

The substrate's contract is byte-identity: for any worker count the
resolver's entity clusters, pedigree graph, and checkpoint states equal
the serial run's exactly.  Speed comes from removing redundant Python
work, never from reordering decisions.
"""

from repro.parallel.config import ParallelConfig, available_cpus
from repro.parallel.pool import ChunkRunner, make_tasks
from repro.parallel.precompute import (
    ParallelSeeds,
    build_payload,
    parallel_candidate_pairs,
    parallel_graph_and_seeds,
)

__all__ = [
    "ParallelConfig",
    "ParallelSeeds",
    "ChunkRunner",
    "available_cpus",
    "build_payload",
    "make_tasks",
    "parallel_candidate_pairs",
    "parallel_graph_and_seeds",
]
