"""Parallel execution configuration.

``ParallelConfig`` is deliberately *not* part of
:class:`~repro.core.config.SnapsConfig`: worker count is an execution
detail with no influence on output (the parallel path is byte-identical
to serial), so it must not enter config fingerprints — a run
checkpointed under ``--workers 4`` resumes cleanly under ``--workers 1``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.supervise.config import SuperviseConfig

__all__ = ["ParallelConfig", "available_cpus"]


def available_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class ParallelConfig:
    """How the offline phases fan out.

    ``workers``:

    * ``None`` (default, ``auto``) — pick a worker count from the
      machine, but stay serial for datasets below ``min_records``
      (process fan-out costs more than it saves on tiny inputs);
    * ``0`` — force the serial reference path;
    * ``1`` — run the parallel pipeline in-process (vectorised MinHash,
      batch scoring, seeded caches) without spawning workers;
    * ``N >= 2`` — additionally score chunks in up to ``N`` pool
      processes.  The pool never exceeds the CPUs actually available —
      oversubscribing a CPU-bound pool only adds scheduling and IPC
      overhead — so on a small machine a large ``N`` degrades gracefully
      to the in-process pipeline.  ``oversubscribe=True`` removes that
      clamp (tests use it to exercise the real pool everywhere).

    Chunk boundaries depend on the *requested* worker count, never on
    the machine, and chunk results merge in submission order — output is
    identical whatever runs where.

    ``supervise`` carries the worker-supervision knobs (deadlines, retry
    budget, quarantine) down to every pool; like the rest of this config
    it is an execution detail that never enters fingerprints.  ``None``
    means "read ``SNAPS_TASK_*`` from the environment at pool time".
    """

    workers: int | None = None
    min_records: int = 1000
    max_auto_workers: int = 8
    chunks_per_worker: int = 4
    min_chunk_size: int = 512
    oversubscribe: bool = False
    supervise: SuperviseConfig | None = None

    def __post_init__(self) -> None:
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers cannot be negative, got {self.workers}")

    def effective_workers(self, n_records: int) -> int:
        """Worker count for a dataset of ``n_records`` (0 = serial)."""
        if self.workers is not None:
            return self.workers
        if n_records < self.min_records:
            return 0
        return max(1, min(available_cpus(), self.max_auto_workers))
