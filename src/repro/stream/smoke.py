"""End-to-end streaming smoke check (the ``make stream-smoke`` gate).

Builds a tiny dataset in-process, saves half of it as the base
snapshot, boots the HTTP server from that snapshot, spools the other
half as three micro-batches, and drains a :class:`StreamPipeline`
against the live replica.  Asserts that

* every batch was ingested and promoted (lineage = base + 3);
* the replica ends up serving the final snapshot (healthz entity count
  matches the terminal snapshot's graph) and answers a search;
* the pipeline's ``stream.*`` gauges/counters are present in the shared
  metrics registry and in the replica's Prometheus exposition.

Artifacts (journal, metrics dump) land in ``--artifacts DIR`` (default
``/tmp/snaps-stream-smoke``) so CI can upload them on failure.

Run with ``python -m repro.stream.smoke``.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import threading
from pathlib import Path

from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_tiny_dataset, split_stream
from repro.obs.prom import check_exposition
from repro.serve.app import ServeConfig, ServingApp, make_server
from repro.serve.client import ServeClient
from repro.store import SnapshotStore
from repro.stream import StreamConfig, StreamPipeline, write_batch

__all__ = ["main"]

N_BATCHES = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.stream.smoke")
    parser.add_argument(
        "--artifacts", default="/tmp/snaps-stream-smoke", metavar="DIR",
        help="working/artifact directory (wiped on start)",
    )
    args = parser.parse_args(argv)
    root = Path(args.artifacts)
    shutil.rmtree(root, ignore_errors=True)
    root.mkdir(parents=True)

    dataset = make_tiny_dataset(seed=3)
    base, batches = split_stream(dataset, N_BATCHES)
    store = SnapshotStore(root / "store")
    store.save(SnapsResolver(SnapsConfig()).resolve(base))
    loaded = store.load(artifacts=("graph", "indexes"))

    app = ServingApp(
        loaded.graph,
        ServeConfig(),
        keyword_index=loaded.keyword_index,
        sim_index=loaded.sim_index,
        store=store,
        manifest=loaded.manifest,
    )
    server = make_server(app, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        spool = root / "spool"
        for dataset_batch in batches:
            write_batch(spool, dataset_batch.name, dataset_batch)
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool,
                serve_url=f"http://{host}:{port}",
                poll_interval_s=0.1,
                coalesce=False,
                drain=True,
            ),
            # Sharing the replica's registry folds stream.* gauges into
            # its /metricz prom exposition (single-process deployment).
            metrics=app.metrics,
        )
        ingested = pipeline.run()
        (root / "metrics.json").write_text(
            json.dumps(pipeline.metrics.as_dict(), indent=2) + "\n"
        )

        lineage = pipeline.journal.snapshot_lineage()
        if ingested != N_BATCHES or len(lineage) != N_BATCHES:
            print(
                f"stream-smoke: expected {N_BATCHES} ingested+promoted "
                f"batches, got ingested={ingested} lineage={lineage}",
                file=sys.stderr,
            )
            return 1
        if pipeline.journal.unpromoted():
            print(
                f"stream-smoke: unpromoted windows left: "
                f"{pipeline.journal.unpromoted()}",
                file=sys.stderr,
            )
            return 1
        if store.lineage_ids()[0] != lineage[-1]:
            print(
                f"stream-smoke: store HEAD {store.lineage_ids()[0]} != "
                f"last promoted {lineage[-1]}",
                file=sys.stderr,
            )
            return 1

        client = ServeClient(f"http://{host}:{port}")
        health = client.healthz()
        final_graph = store.load(artifacts=("graph",)).graph
        if health["status"] != "ok" or health["entities"] != len(final_graph):
            print(
                f"stream-smoke: replica not serving the final snapshot: "
                f"{health} (want {len(final_graph)} entities)",
                file=sys.stderr,
            )
            return 1
        probe = next(
            e for e in final_graph
            if e.first("first_name") and e.first("surname")
        )
        served = client.search(
            probe.first("first_name"), probe.first("surname"), top=3
        )
        if "matches" not in served:
            print(f"stream-smoke: bad search payload: {served}", file=sys.stderr)
            return 1

        gauges = pipeline.metrics.as_dict()["gauges"]
        counters = pipeline.metrics.as_dict()["counters"]
        for gauge in ("stream.lag_batches", "stream.staleness_seconds"):
            if gauge not in gauges:
                print(f"stream-smoke: missing gauge {gauge}", file=sys.stderr)
                return 1
        if counters.get("stream.promotions", 0) < N_BATCHES:
            print(
                f"stream-smoke: expected >= {N_BATCHES} promotions, "
                f"counters: {counters}",
                file=sys.stderr,
            )
            return 1
        prom = client.metricz_prom()
        try:
            families = check_exposition(prom)
        except ValueError as exc:
            print(f"stream-smoke: invalid prom exposition: {exc}", file=sys.stderr)
            return 1
        for family in ("snaps_stream_lag_batches", "snaps_stream_promotions_total"):
            if family not in families:
                print(
                    f"stream-smoke: prom exposition missing {family}",
                    file=sys.stderr,
                )
                return 1
        print(
            f"stream-smoke ok: {ingested} batches -> {len(lineage)} promoted "
            f"snapshots, replica at {health['entities']} entities, "
            f"lag={gauges['stream.lag_batches']}"
        )
        return 0
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":  # pragma: no cover - exercised via make stream-smoke
    raise SystemExit(main())
