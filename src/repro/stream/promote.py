"""Zero-downtime snapshot promotion into a live serving replica.

The server's ``POST /v1/reload`` already swaps graph + indexes
atomically and keeps the old snapshot serving when the load fails.
:class:`SnapshotPromoter` wraps that endpoint with the operational
policy a continuous pipeline needs:

* targeted promotion — the exact snapshot id the ingest committed, not
  whatever HEAD happens to be by the time the request lands;
* transient-error **retries** (:class:`~repro.faults.RetryPolicy`) and a
  **circuit breaker** so a down replica stalls promotion (backpressure)
  instead of being hammered;
* post-swap **health verification** with automatic **rollback**: if the
  replica reports ``failing`` right after the swap, the previous
  snapshot is promoted back and the attempt is reported as a failure —
  traffic never stays pinned to a bad snapshot.

The promoter speaks through :meth:`repro.serve.client.ServeClient.reload`
— the same code path operators use by hand — so there is exactly one
reload client implementation to harden.
"""

from __future__ import annotations

from repro.faults import CircuitBreaker, RetryPolicy, TransientFault, classify, fire
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.serve.client import ServeClient

__all__ = ["PromoteError", "SnapshotPromoter"]

logger = get_logger("stream.promote")


class PromoteError(TransientFault):
    """A promotion attempt failed; the previous snapshot keeps serving."""

    def __init__(self, snapshot_id: str, reason: str) -> None:
        super().__init__(f"promotion of {snapshot_id} failed: {reason}")
        self.snapshot_id = snapshot_id
        self.reason = reason


class SnapshotPromoter:
    """Promotes committed snapshots into one serving replica."""

    def __init__(
        self,
        client: ServeClient | str,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        metrics: MetricsRegistry | None = None,
        verify_health: bool = True,
    ) -> None:
        self.client = (
            ServeClient(client) if isinstance(client, str) else client
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker("stream.promote", metrics=metrics)
        )
        self.metrics = metrics
        self.verify_health = verify_health

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name)

    # ------------------------------------------------------------------

    def promote(self, snapshot_id: str) -> dict:
        """Swap the replica onto ``snapshot_id``; returns the reload
        payload.  Raises :class:`PromoteError` when the replica stays on
        its previous snapshot (reload failed, circuit open, or the
        post-swap health check triggered a rollback)."""
        fire("stream.promote")
        if not self.breaker.allow():
            self._count("stream.promote.rejected")
            raise PromoteError(
                snapshot_id,
                f"promotion circuit open; retry in "
                f"{self.breaker.retry_after_s():.1f}s",
            )
        try:
            result = self.client.reload(snapshot_id, retry=self.retry)
        except Exception as exc:
            self.breaker.record_failure(exc)
            self._count("stream.promote.failures")
            logger.warning(
                "promotion of %s failed (%s): %s",
                snapshot_id, classify(exc), exc,
            )
            raise PromoteError(snapshot_id, str(exc)) from exc
        previous = result.get("previous")
        if self.verify_health and result.get("status") == "reloaded":
            problem = self._post_swap_problem()
            if problem is not None:
                self._rollback(snapshot_id, previous)
                self.breaker.record_failure()
                self._count("stream.promote.rollbacks")
                raise PromoteError(
                    snapshot_id, f"post-swap health check failed: {problem}"
                )
        self.breaker.record_success()
        self._count("stream.promotions")
        logger.info(
            "promoted snapshot %s (%s, previous %s)",
            snapshot_id, result.get("status"), previous,
        )
        return result

    # ------------------------------------------------------------------

    def _post_swap_problem(self) -> str | None:
        """A reason the freshly-swapped replica is unhealthy, or None."""
        try:
            health = self.client.healthz()
        except Exception as exc:  # the replica vanished mid-promotion
            return f"healthz unreachable: {exc}"
        if health.get("status") == "failing":
            return f"replica reports failing: {health.get('breakers')}"
        return None

    def _rollback(self, snapshot_id: str, previous: str | None) -> None:
        if previous is None:
            logger.error(
                "cannot roll back %s: no previous snapshot id", snapshot_id
            )
            return
        try:
            self.client.reload(previous, retry=self.retry)
            logger.warning(
                "rolled back %s -> %s after failed health check",
                snapshot_id, previous,
            )
        except Exception as exc:  # keep the original failure primary
            logger.error(
                "rollback from %s to %s also failed: %s",
                snapshot_id, previous, exc,
            )
