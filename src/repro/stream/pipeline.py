"""The streaming ingest state machine.

One :class:`StreamPipeline` turns a spool directory of micro-batches
into a lineage of promoted snapshots:

.. code-block:: text

    poll ──▶ validate ──▶ ingest ──▶ commit ──▶ promote ──▶ done
             (schema)     (resolve    (journal    (reload     (journal
                           + save)    INGESTED)   replica)    PROMOTED)

Each arrow is a durability boundary with a named fault-injection site
(``stream.validate`` … ``stream.done``), so chaos tests can kill the
process at every transition and assert that a fresh pipeline resumes to
the *identical* snapshot lineage (see :mod:`repro.stream.journal` for
the convergence argument).

Backpressure is **bounded staleness via coalescing**: the spool is
polled continuously, but when the backlog exceeds
``max_lag_batches`` — the replica is slow to reload, or a burst of
batches landed — pending batches are merged into one ingest window
instead of being replayed one-by-one.  Freshness degrades (fewer
intermediate snapshots) before throughput does; the
``stream.lag_batches`` and ``stream.staleness_seconds`` gauges expose
exactly how far behind the serving replica is.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from functools import reduce
from pathlib import Path

from repro.data.loader import DatasetLoadError, load_dataset_checked
from repro.data.records import Dataset, concat_datasets
from repro.faults import fire
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Trace
from repro.store.incremental import IncrementalResolver
from repro.store.snapshot import SnapshotStore
from repro.stream.journal import INGESTED, PROMOTED, QUARANTINED, BatchJournal
from repro.stream.promote import PromoteError, SnapshotPromoter
from repro.stream.source import SpoolBatch, SpoolSource
from repro.supervise import SuperviseConfig

__all__ = ["StreamConfig", "StreamPipeline"]

logger = get_logger("stream.pipeline")

CHECKPOINT_DIRNAME = ".stream"
BASE_FILENAME = "base.txt"


@dataclass
class StreamConfig:
    """Operator-tunable knobs of one streaming pipeline."""

    spool: Path
    serve_url: str | None = None
    checkpoint: Path | None = None  # default: <spool>/.stream
    poll_interval_s: float = 1.0
    max_lag_batches: int = 4
    coalesce: bool = True
    workers: int | None = None
    validation: str = "strict"  # or "quarantine"
    require_ready: bool = False
    drain: bool = False  # exit once the spool is fully caught up
    max_batches: int | None = None  # stop after ingesting this many
    # Compact the journal once its live entry count exceeds this bound
    # (None = never): settled windows fold into the state header, so a
    # long-lived stream's journal stays O(unpromoted) instead of O(all
    # windows ever ingested).
    journal_max_entries: int | None = None
    # Worker-supervision knobs for the ingest re-resolve pools.
    supervise: SuperviseConfig | None = None

    def __post_init__(self) -> None:
        self.spool = Path(self.spool)
        if self.checkpoint is None:
            self.checkpoint = self.spool / CHECKPOINT_DIRNAME
        self.checkpoint = Path(self.checkpoint)
        if self.validation not in ("strict", "quarantine"):
            raise ValueError(
                f"validation must be 'strict' or 'quarantine', "
                f"got {self.validation!r}"
            )
        if self.max_lag_batches < 1:
            raise ValueError("max_lag_batches must be >= 1")
        if self.journal_max_entries is not None and self.journal_max_entries < 1:
            raise ValueError("journal_max_entries must be >= 1")


class StreamPipeline:
    """Continuous micro-batch ingest with zero-downtime promotion."""

    def __init__(
        self,
        store: SnapshotStore,
        config: StreamConfig,
        metrics: MetricsRegistry | None = None,
        trace: Trace | None = None,
        promoter: SnapshotPromoter | None = None,
        source: SpoolSource | None = None,
    ) -> None:
        self.store = store
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace = trace if trace is not None else Trace.disabled()
        self.journal = BatchJournal(config.checkpoint)
        self.source = (
            source
            if source is not None
            else SpoolSource(config.spool, require_ready=config.require_ready)
        )
        if promoter is None and config.serve_url:
            promoter = SnapshotPromoter(config.serve_url, metrics=self.metrics)
        self.promoter = promoter
        self.resolver = IncrementalResolver(store)
        self._pending: list[SpoolBatch] = []
        self._stop = threading.Event()
        self._fresh_t = time.monotonic()
        self._parent = self._resolve_parent()
        self.batches_done = 0

    # ------------------------------------------------------------------
    # Parent tracking
    # ------------------------------------------------------------------

    def _resolve_parent(self) -> str | None:
        """The snapshot the next ingest window folds into.

        The journal — not the store's HEAD — is the source of truth: a
        crash between snapshot save and the ``ingested`` journal line
        advances HEAD past the last committed entry, and the replay of
        that window must run against the *recorded* parent so the
        deterministic re-ingest converges onto the already-saved child.
        The pre-stream base snapshot is pinned in ``base.txt`` on first
        construction, before any ingest can move HEAD.
        """
        lineage = self.journal.snapshot_lineage()
        if lineage:
            return lineage[-1]
        base_path = self.config.checkpoint / BASE_FILENAME
        if base_path.exists():
            base = base_path.read_text().strip()
            return base or None
        base = self.store.latest()
        self.config.checkpoint.mkdir(parents=True, exist_ok=True)
        base_path.write_text(f"{base}\n" if base else "\n")
        return base

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------

    def _update_gauges(self) -> None:
        lag = len(self._pending)
        if self.promoter is not None:
            lag += len(self.journal.unpromoted())
        self.metrics.set_gauge("stream.lag_batches", lag)
        staleness = 0.0 if lag == 0 else time.monotonic() - self._fresh_t
        self.metrics.set_gauge("stream.staleness_seconds", staleness)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> list[str]:
        """Promote committed-but-unpromoted windows (crash catch-up).

        Returns the snapshot ids promoted.  Windows whose promotion
        still fails stay unpromoted and are retried on later cycles;
        later windows are *not* attempted past a failed earlier one, so
        the replica only ever moves forward along the lineage.
        """
        if self.promoter is None:
            return []
        promoted: list[str] = []
        for entry in self.journal.unpromoted():
            assert entry.snapshot is not None
            try:
                self.promoter.promote(entry.snapshot)
            except PromoteError as exc:
                self.metrics.inc("stream.promote_failures")
                logger.warning("recovery promotion pending: %s", exc)
                break
            fire("stream.done")
            self.journal.record(
                PROMOTED,
                entry.window,
                entry.shas,
                entry.batches,
                snapshot=entry.snapshot,
                seq=entry.seq,
            )
            self._fresh_t = time.monotonic()
            promoted.append(entry.snapshot)
        return promoted

    # ------------------------------------------------------------------
    # One cycle
    # ------------------------------------------------------------------

    def cycle(self) -> int:
        """Poll, then ingest+promote at most one window.

        Returns the number of batches folded into snapshots this cycle
        (0 when idle).  Fault-injection or I/O errors propagate — the
        surrounding ``run()`` loop (or a chaos test) decides whether
        that is fatal.
        """
        self.recover()
        bound = self.config.journal_max_entries
        if bound is not None and len(self.journal.entries) > bound:
            # Fold settled windows; the live tail (unpromoted work) and
            # the exactly-once state both survive in the header.
            self.journal.compact(require_promoted=self.promoter is not None)
            self.metrics.inc("stream.journal_compactions")
        completed = self.journal.completed_shas()
        queued = {batch.sha256 for batch in self._pending}
        for batch in self.source.poll():
            if batch.sha256 in completed:
                logger.info(
                    "batch %s already ingested (sha %.12s…); skipping",
                    batch.name, batch.sha256,
                )
                continue
            if batch.sha256 not in queued:
                queued.add(batch.sha256)
                self._pending.append(batch)
        self._update_gauges()
        if not self._pending:
            return 0

        if self.config.coalesce and len(self._pending) > self.config.max_lag_batches:
            window, self._pending = self._pending, []
            self.metrics.inc("stream.batches_coalesced", len(window) - 1)
            logger.info(
                "lag %d exceeds max_lag_batches=%d: coalescing %d batches "
                "into one window",
                len(window), self.config.max_lag_batches, len(window),
            )
        else:
            window = [self._pending.pop(0)]

        ingested = self._process_window(window)
        self.batches_done += ingested
        self._update_gauges()
        return ingested

    def _process_window(self, window: list[SpoolBatch]) -> int:
        """validate → ingest → commit → promote → done for one window."""
        fire("stream.validate")
        datasets: list[Dataset] = []
        members: list[SpoolBatch] = []
        for batch in window:
            try:
                dataset, _report = load_dataset_checked(
                    batch.stem,
                    name=batch.name,
                    mode=self.config.validation,
                    report_path=self.config.checkpoint / "quarantine.jsonl",
                    metrics=self.metrics,
                )
            except DatasetLoadError as exc:
                # Poison batch: journal it so it is never retried, keep
                # the rest of the window.
                self.metrics.inc("stream.batches_quarantined")
                logger.error("quarantining batch %s: %s", batch.name, exc)
                self.journal.record(
                    QUARANTINED, batch.name, [batch.sha256], [batch.name]
                )
                continue
            if len(dataset.certificates) == 0:
                self.metrics.inc("stream.batches_quarantined")
                logger.error(
                    "quarantining batch %s: no valid certificates survived "
                    "validation", batch.name,
                )
                self.journal.record(
                    QUARANTINED, batch.name, [batch.sha256], [batch.name]
                )
                continue
            datasets.append(dataset)
            members.append(batch)
        if not members:
            return 0

        window_name = "+".join(batch.name for batch in members)
        delta = reduce(
            lambda a, b: concat_datasets(a, b), datasets[1:], datasets[0]
        )

        fire("stream.ingest")
        result = self.resolver.ingest(
            delta,
            parent=self._parent,
            trace=self.trace,
            metrics=self.metrics,
            workers=self.config.workers,
            supervise=self.config.supervise,
        )
        snapshot_id = result.manifest.snapshot_id

        fire("stream.commit")
        entry = self.journal.record(
            INGESTED,
            window_name,
            [batch.sha256 for batch in members],
            [batch.name for batch in members],
            snapshot=snapshot_id,
            parent=self._parent,
        )
        self._parent = snapshot_id
        self.metrics.inc("stream.batches_ingested", len(members))
        self.metrics.inc("stream.windows_ingested")
        logger.info(
            "window %s -> snapshot %s (%d batches, %d certificates)",
            window_name, snapshot_id, len(members), len(delta.certificates),
        )

        if self.promoter is not None:
            try:
                self.promoter.promote(snapshot_id)
            except PromoteError as exc:
                # Keep-old-on-failure: the replica stays on its previous
                # snapshot, the window stays journalled as unpromoted,
                # and recover() retries on later cycles.
                self.metrics.inc("stream.promote_failures")
                logger.warning("promotion deferred: %s", exc)
                return len(members)
            fire("stream.done")
            self.journal.record(
                PROMOTED,
                entry.window,
                entry.shas,
                entry.batches,
                snapshot=snapshot_id,
                seq=entry.seq,
            )
            self._fresh_t = time.monotonic()
        return len(members)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask ``run()`` to exit after the in-flight cycle."""
        self._stop.set()

    def _caught_up(self) -> bool:
        if self._pending:
            return False
        # Without a replica to promote into, committed == caught up.
        return self.promoter is None or not self.journal.unpromoted()

    def run(self) -> int:
        """Poll until stopped (or drained); returns batches ingested.

        ``config.drain`` exits once a poll finds nothing new and all
        committed windows are promoted — the batch-mode invocation used
        by the smoke gate and the benchmark.  ``config.max_batches``
        bounds total ingest either way.
        """
        config = self.config
        while not self._stop.is_set():
            ingested = self.cycle()
            if (
                config.max_batches is not None
                and self.batches_done >= config.max_batches
            ):
                break
            if ingested:
                continue  # hot loop while there is a backlog
            if config.drain and self._caught_up():
                break
            self._stop.wait(config.poll_interval_s)
        self._update_gauges()
        return self.batches_done
