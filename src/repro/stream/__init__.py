"""repro.stream — continuous micro-batch ingest with zero-downtime
snapshot promotion.

The offline pipeline (``repro snapshot`` / ``repro ingest``) assumes an
operator runs each step; ``repro.stream`` closes the loop for the
archive-maintenance deployment the paper targets, where transcription
batches keep arriving:

* :mod:`~repro.stream.source` — spool-directory watcher with
  stable-file detection and an optional ordered batch manifest;
* :mod:`~repro.stream.journal` — append-only, content-hash-idempotent
  batch journal giving exactly-once crash-resume;
* :mod:`~repro.stream.pipeline` — the validate → ingest → commit →
  promote state machine with coalescing backpressure and
  ``stream.lag_batches`` / ``stream.staleness_seconds`` gauges;
* :mod:`~repro.stream.promote` — retrying, circuit-broken, health-
  verified promotion of new snapshots into a live serving replica.

Entry point: ``repro stream --spool … --serve-url …`` (see
:mod:`repro.cli`).
"""

from repro.stream.journal import BatchJournal, JournalEntry
from repro.stream.pipeline import StreamConfig, StreamPipeline
from repro.stream.promote import PromoteError, SnapshotPromoter
from repro.stream.source import SpoolBatch, SpoolSource, batch_sha256, write_batch

__all__ = [
    "BatchJournal",
    "JournalEntry",
    "PromoteError",
    "SnapshotPromoter",
    "SpoolBatch",
    "SpoolSource",
    "StreamConfig",
    "StreamPipeline",
    "batch_sha256",
    "write_batch",
]
