"""Micro-batch sources: where the streaming pipeline gets its input.

A *spool directory* is the hand-off point between whatever delivers
certificates (a transcription vendor's upload job, an archive export)
and the ingester: each micro-batch is one dataset CSV pair

.. code-block:: text

    <spool>/
      2024-03-b001.records.csv
      2024-03-b001.certs.csv
      2024-03-b001.ready          # optional explicit commit marker
      batches.list                # optional ordered manifest

:class:`SpoolSource` polls the directory and yields batches exactly
once, in a deterministic order, only when they are *complete*:

* a ``<stem>.ready`` marker makes a batch eligible immediately — the
  writer's explicit commit;
* without a marker, **stable-file detection** applies: both CSVs must
  have identical (size, mtime) across two consecutive polls, so a
  half-uploaded file is never ingested.

Ordering is the line order of ``batches.list`` when present (an ordered
batch manifest — reprocessing a historical backlog in archival order),
else lexicographic by stem name.  Each batch carries a SHA-256 over its
two payload files; that hash is the batch's identity everywhere
downstream (journal idempotence, crash-resume reconciliation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

from repro.obs.logs import get_logger

__all__ = ["SpoolBatch", "SpoolSource", "batch_sha256", "write_batch"]

logger = get_logger("stream.source")

MANIFEST_NAME = "batches.list"
READY_SUFFIX = ".ready"


def batch_sha256(stem: Path) -> str:
    """Content identity of one batch: SHA-256 over both CSV payloads."""
    digest = hashlib.sha256()
    for suffix in (".records.csv", ".certs.csv"):
        path = stem.with_suffix(suffix)
        digest.update(path.name.encode("utf-8") + b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class SpoolBatch:
    """One complete micro-batch waiting in the spool."""

    name: str
    stem: Path
    sha256: str

    @property
    def records_path(self) -> Path:
        return self.stem.with_suffix(".records.csv")

    @property
    def certs_path(self) -> Path:
        return self.stem.with_suffix(".certs.csv")


def write_batch(spool: Path, name: str, dataset, ready: bool = True) -> Path:
    """Spool ``dataset`` as one batch (test/benchmark producer helper).

    Writes the CSV pair under a temporary name first and renames into
    place, then drops the ``.ready`` marker — the same commit protocol a
    careful external producer would use.
    """
    from repro.data.loader import save_dataset_csv

    spool = Path(spool)
    spool.mkdir(parents=True, exist_ok=True)
    tmp_stem = spool / f".tmp-{name}"
    records_tmp, certs_tmp = save_dataset_csv(dataset, tmp_stem)
    stem = spool / name
    records_tmp.rename(stem.with_suffix(".records.csv"))
    certs_tmp.rename(stem.with_suffix(".certs.csv"))
    if ready:
        stem.with_suffix(READY_SUFFIX).touch()
    return stem


@dataclass
class _Sighting:
    """(size, mtime_ns) of both CSVs when a stem was last polled."""

    fingerprint: tuple


class SpoolSource:
    """Ordered, exactly-once discovery of complete spool batches.

    ``poll()`` returns the batches that became ready since the previous
    call, oldest first.  A batch is returned at most once per source
    instance; cross-process/run deduplication is the journal's job (the
    pipeline filters on ``sha256``).
    """

    def __init__(self, spool: str | Path, require_ready: bool = False) -> None:
        """``require_ready`` disables stable-file detection: only
        batches with an explicit ``.ready`` marker are eligible (use
        when producers are known to write markers — detection then
        never waits an extra poll)."""
        self.spool = Path(spool)
        self.require_ready = require_ready
        self._sightings: dict[str, _Sighting] = {}
        self._returned: set[str] = set()

    # ------------------------------------------------------------------

    def _ordered_stems(self) -> list[str]:
        """Candidate stem names in processing order."""
        manifest = self.spool / MANIFEST_NAME
        if manifest.exists():
            names = [
                line.strip()
                for line in manifest.read_text().splitlines()
                if line.strip() and not line.strip().startswith("#")
            ]
            return names
        names = sorted(
            path.name[: -len(".records.csv")]
            for path in self.spool.glob("*.records.csv")
            if not path.name.startswith(".")
        )
        return names

    def _fingerprint(self, stem: Path) -> tuple | None:
        parts = []
        for suffix in (".records.csv", ".certs.csv"):
            path = stem.with_suffix(suffix)
            try:
                stat = path.stat()
            except FileNotFoundError:
                return None
            parts.append((stat.st_size, stat.st_mtime_ns))
        return tuple(parts)

    def _is_ready(self, name: str, stem: Path) -> bool:
        if stem.with_suffix(READY_SUFFIX).exists():
            return True
        if self.require_ready:
            return False
        fingerprint = self._fingerprint(stem)
        if fingerprint is None:
            return False
        sighting = self._sightings.get(name)
        if sighting is not None and sighting.fingerprint == fingerprint:
            return True
        self._sightings[name] = _Sighting(fingerprint)
        return False

    def poll(self) -> list[SpoolBatch]:
        """New complete batches, in processing order."""
        if not self.spool.is_dir():
            return []
        ready: list[SpoolBatch] = []
        for name in self._ordered_stems():
            if name in self._returned:
                continue
            stem = self.spool / name
            if self._fingerprint(stem) is None:
                # Listed in the manifest but not (fully) delivered yet:
                # later batches must wait to preserve the order.
                if (self.spool / MANIFEST_NAME).exists():
                    break
                continue
            if not self._is_ready(name, stem):
                continue
            self._returned.add(name)
            ready.append(SpoolBatch(name, stem, batch_sha256(stem)))
        if ready:
            logger.info(
                "spool %s: %d new batch(es): %s",
                self.spool,
                len(ready),
                ", ".join(b.name for b in ready),
            )
        return ready
