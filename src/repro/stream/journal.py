"""Append-only batch journal: the pipeline's exactly-once memory.

Every ingest window the streaming pipeline completes is recorded as one
JSONL line in ``journal.jsonl``:

.. code-block:: json

    {"seq": 3, "state": "ingested", "window": "b002+b003",
     "batches": ["b002", "b003"], "shas": ["ab…", "cd…"],
     "snapshot": "1f2e…", "parent": "9a0b…", "at": "…"}
    {"seq": 3, "state": "promoted", "window": "b002+b003",
     "snapshot": "1f2e…", "at": "…"}

Identity is the batch content hash (``shas``), never the file name — a
renamed or re-spooled copy of an already-ingested batch is recognised
and skipped.  Combined with content-addressed snapshots this gives
crash-resume **exactly-once convergence** with no write-ahead locking:

* crash *before* the ``ingested`` line: the re-run re-ingests the batch
  against the same parent; resolution is deterministic, so the store
  produces the **identical snapshot id** and simply reuses the existing
  directory — the lineage cannot fork or duplicate;
* crash *after* ``ingested`` but before promotion: the re-run skips the
  ingest entirely and promotes the recorded snapshot id;
* crash *after* promotion but before the ``promoted`` line: the re-run
  re-sends the promotion, which the server answers as an idempotent
  no-op (``status: unchanged``).

Appends are flushed and fsynced per line; a crash mid-append leaves at
worst a torn final line, which :meth:`BatchJournal.load` discards (the
affected window then replays, converging as above).

**Compaction.**  A long-lived stream appends forever, so
:meth:`BatchJournal.compact` folds every *settled* entry (quarantined
windows, promoted windows, and — in promoterless pipelines, where
``ingested`` is terminal — all ingested windows) into one state-header
line and keeps only the live tail of unpromoted work.  The header
preserves everything exactly-once depends on: the folded batch hashes,
per-hash ingest counts, the snapshot lineage, and the highest folded
``seq``.  The rewrite goes through a temp file and one ``os.replace``,
so a crash on either side of the boundary (fault sites
``journal.compact.commit`` before the rename, ``journal.compact.done``
after) leaves either the original or the compacted journal — both load
to identical query answers.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.faults import fire
from repro.faults.resources import as_resource_fault, check_free_space
from repro.obs.logs import get_logger

__all__ = [
    "BatchJournal",
    "JournalEntry",
    "JournalHeader",
    "INGESTED",
    "PROMOTED",
    "QUARANTINED",
]

logger = get_logger("stream.journal")

JOURNAL_NAME = "journal.jsonl"

# The state-header line a compaction writes as line 1 of the journal.
HEADER_STATE = "compacted"
HEADER_VERSION = 1

INGESTED = "ingested"
PROMOTED = "promoted"
# A whole window dropped by strict-mode validation failure: recorded so
# the poison batch is not retried forever.
QUARANTINED = "quarantined"
_STATES = (INGESTED, PROMOTED, QUARANTINED)


@dataclass
class JournalEntry:
    """One state transition of one ingest window."""

    seq: int
    state: str
    window: str
    shas: list[str] = field(default_factory=list)
    batches: list[str] = field(default_factory=list)
    snapshot: str | None = None
    parent: str | None = None
    at: str = ""

    def as_dict(self) -> dict:
        payload = {
            "seq": self.seq,
            "state": self.state,
            "window": self.window,
            "batches": self.batches,
            "shas": self.shas,
        }
        if self.snapshot is not None:
            payload["snapshot"] = self.snapshot
        if self.parent is not None:
            payload["parent"] = self.parent
        payload["at"] = self.at
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        if data.get("state") not in _STATES:
            raise ValueError(f"journal entry has unknown state: {data!r}")
        return cls(
            seq=int(data["seq"]),
            state=data["state"],
            window=data["window"],
            shas=list(data.get("shas", [])),
            batches=list(data.get("batches", [])),
            snapshot=data.get("snapshot"),
            parent=data.get("parent"),
            at=data.get("at", ""),
        )


@dataclass
class JournalHeader:
    """Folded state of every settled entry a compaction removed."""

    through_seq: int = 0
    shas: list[str] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    lineage: list[str] = field(default_factory=list)
    at: str = ""

    def as_dict(self) -> dict:
        return {
            "state": HEADER_STATE,
            "version": HEADER_VERSION,
            "through_seq": self.through_seq,
            "shas": sorted(self.shas),
            "counts": dict(sorted(self.counts.items())),
            "lineage": list(self.lineage),
            "at": self.at,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalHeader":
        if data.get("version") != HEADER_VERSION:
            raise ValueError(
                f"journal header version {data.get('version')!r} unsupported "
                f"(this build reads {HEADER_VERSION})"
            )
        return cls(
            through_seq=int(data.get("through_seq", 0)),
            shas=list(data.get("shas", [])),
            counts={k: int(v) for k, v in data.get("counts", {}).items()},
            lineage=list(data.get("lineage", [])),
            at=data.get("at", ""),
        )


class BatchJournal:
    """Durable, torn-line-tolerant record of completed pipeline steps."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.header, self.entries = self._load()

    # ------------------------------------------------------------------

    def _load(self) -> tuple[JournalHeader | None, list[JournalEntry]]:
        header: JournalHeader | None = None
        entries: list[JournalEntry] = []
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return header, entries
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line.decode("utf-8"))
                if data.get("state") == HEADER_STATE:
                    if index != 0 or header is not None:
                        # A complete header in the wrong place is
                        # structural corruption, not a torn append —
                        # never eligible for final-line tolerance.
                        raise ValueError(
                            f"journal {self.path} is corrupt at line "
                            f"{index + 1}: compaction header found past "
                            "line 1"
                        ) from None
                    header = JournalHeader.from_dict(data)
                    continue
                entries.append(JournalEntry.from_dict(data))
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                if "compaction header found past" in str(exc):
                    raise
                if any(later.strip() for later in lines[index + 1:]):
                    raise ValueError(
                        f"journal {self.path} is corrupt at line "
                        f"{index + 1}: {exc}"
                    ) from exc
                # Torn final line from a crash mid-append: drop it — the
                # affected window replays and converges.
                logger.warning(
                    "journal %s: dropping torn final line (%s)",
                    self.path, exc,
                )
                break
        return header, entries

    def record(
        self,
        state: str,
        window: str,
        shas: list[str],
        batches: list[str],
        snapshot: str | None = None,
        parent: str | None = None,
        seq: int | None = None,
    ) -> JournalEntry:
        """Append one entry durably (flush + fsync) and index it."""
        if state not in _STATES:
            raise ValueError(f"unknown journal state {state!r}")
        entry = JournalEntry(
            seq=self.next_seq() if seq is None else seq,
            state=state,
            window=window,
            shas=list(shas),
            batches=list(batches),
            snapshot=snapshot,
            parent=parent,
            at=datetime.now(timezone.utc).isoformat(),
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        check_free_space(self.directory, 1 << 16, "stream journal")
        line = json.dumps(entry.as_dict(), sort_keys=True) + "\n"
        size_before = self.path.stat().st_size if self.path.exists() else 0
        try:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            # Never leave a torn head: roll the file back to its
            # pre-append length so the journal stays parseable even if
            # some bytes of the failed line reached the disk.
            try:
                with self.path.open("r+b") as handle:
                    handle.truncate(size_before)
            except OSError:
                pass  # reload's torn-final-line tolerance still covers it
            fault = as_resource_fault(
                exc,
                f"stream journal append to {self.path}",
                "the entry was not recorded and the journal was rolled "
                "back to its previous length; free disk space under the "
                "spool and re-run — the window replays exactly once",
            )
            if fault is not None:
                raise fault from exc
            raise
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def next_seq(self) -> int:
        floor = self.header.through_seq if self.header is not None else 0
        return max((entry.seq for entry in self.entries), default=floor) + 1

    def completed_shas(self) -> set[str]:
        """Batch hashes that reached at least the ``ingested`` state."""
        shas = {
            sha
            for entry in self.entries
            if entry.state in (INGESTED, QUARANTINED)
            for sha in entry.shas
        }
        if self.header is not None:
            shas.update(self.header.shas)
        return shas

    def unpromoted(self) -> list[JournalEntry]:
        """``ingested`` windows with no matching ``promoted`` entry, in
        commit order — the crash-recovery work list."""
        promoted = {
            entry.seq for entry in self.entries if entry.state == PROMOTED
        }
        return [
            entry
            for entry in self.entries
            if entry.state == INGESTED and entry.seq not in promoted
        ]

    def snapshot_lineage(self) -> list[str]:
        """Snapshot ids committed by this journal, oldest first."""
        lineage = list(self.header.lineage) if self.header is not None else []
        lineage.extend(
            entry.snapshot
            for entry in sorted(
                (e for e in self.entries if e.state == INGESTED),
                key=lambda e: e.seq,
            )
            if entry.snapshot is not None
        )
        return lineage

    def ingest_counts(self) -> dict[str, int]:
        """How many ``ingested`` entries each batch hash appears in —
        the exactly-once assertion is ``max(values) == 1``."""
        counts: dict[str, int] = (
            dict(self.header.counts) if self.header is not None else {}
        )
        for entry in self.entries:
            if entry.state != INGESTED:
                continue
            for sha in entry.shas:
                counts[sha] = counts.get(sha, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------

    def compact(self, require_promoted: bool = True) -> dict:
        """Fold settled entries into the state header; keep the live tail.

        ``require_promoted`` keeps unpromoted ``ingested`` windows live
        (they are the crash-recovery work list); promoterless pipelines
        pass ``False`` because ``ingested`` is terminal for them.  The
        rewrite is atomic (temp file + rename): a crash before the
        rename leaves the original journal, after it the compacted one —
        :meth:`completed_shas`, :meth:`snapshot_lineage`,
        :meth:`ingest_counts`, and :meth:`next_seq` answer identically
        either way, which is what keeps exactly-once intact across a
        mid-compaction crash.
        """
        promoted_seqs = {
            entry.seq for entry in self.entries if entry.state == PROMOTED
        }

        def settled(entry: JournalEntry) -> bool:
            if entry.state in (QUARANTINED, PROMOTED):
                return True
            return not require_promoted or entry.seq in promoted_seqs

        folded = [entry for entry in self.entries if settled(entry)]
        tail = [entry for entry in self.entries if not settled(entry)]
        header = JournalHeader(
            through_seq=self.header.through_seq if self.header else 0,
            shas=list(self.header.shas) if self.header else [],
            counts=dict(self.header.counts) if self.header else {},
            lineage=list(self.header.lineage) if self.header else [],
            at=datetime.now(timezone.utc).isoformat(),
        )
        for entry in folded:
            header.through_seq = max(header.through_seq, entry.seq)
            if entry.state in (INGESTED, QUARANTINED):
                for sha in entry.shas:
                    if sha not in header.shas:
                        header.shas.append(sha)
            if entry.state == INGESTED:
                for sha in entry.shas:
                    header.counts[sha] = header.counts.get(sha, 0) + 1
        for entry in sorted(
            (e for e in folded if e.state == INGESTED), key=lambda e: e.seq
        ):
            if entry.snapshot is not None:
                header.lineage.append(entry.snapshot)

        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-journal-", dir=self.directory
        )
        tmp = Path(tmp_name)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(header.as_dict(), sort_keys=True) + "\n")
                for entry in tail:
                    handle.write(
                        json.dumps(entry.as_dict(), sort_keys=True) + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            # Crash here (site fires *before* the rename): the original
            # journal is untouched; the stale temp file is inert.
            fire("journal.compact.commit")
            os.replace(tmp, self.path)
            # Crash here (site fires *after* the rename): the compacted
            # journal is already durable and loads identically.
            fire("journal.compact.done")
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.header = header
        self.entries = tail
        logger.info(
            "journal %s compacted: folded %d entries, kept %d",
            self.path,
            len(folded),
            len(tail),
        )
        return {"folded": len(folded), "kept": len(tail)}
