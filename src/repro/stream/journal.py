"""Append-only batch journal: the pipeline's exactly-once memory.

Every ingest window the streaming pipeline completes is recorded as one
JSONL line in ``journal.jsonl``:

.. code-block:: json

    {"seq": 3, "state": "ingested", "window": "b002+b003",
     "batches": ["b002", "b003"], "shas": ["ab…", "cd…"],
     "snapshot": "1f2e…", "parent": "9a0b…", "at": "…"}
    {"seq": 3, "state": "promoted", "window": "b002+b003",
     "snapshot": "1f2e…", "at": "…"}

Identity is the batch content hash (``shas``), never the file name — a
renamed or re-spooled copy of an already-ingested batch is recognised
and skipped.  Combined with content-addressed snapshots this gives
crash-resume **exactly-once convergence** with no write-ahead locking:

* crash *before* the ``ingested`` line: the re-run re-ingests the batch
  against the same parent; resolution is deterministic, so the store
  produces the **identical snapshot id** and simply reuses the existing
  directory — the lineage cannot fork or duplicate;
* crash *after* ``ingested`` but before promotion: the re-run skips the
  ingest entirely and promotes the recorded snapshot id;
* crash *after* promotion but before the ``promoted`` line: the re-run
  re-sends the promotion, which the server answers as an idempotent
  no-op (``status: unchanged``).

Appends are flushed and fsynced per line; a crash mid-append leaves at
worst a torn final line, which :meth:`BatchJournal.load` discards (the
affected window then replays, converging as above).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.obs.logs import get_logger

__all__ = ["BatchJournal", "JournalEntry", "INGESTED", "PROMOTED", "QUARANTINED"]

logger = get_logger("stream.journal")

JOURNAL_NAME = "journal.jsonl"

INGESTED = "ingested"
PROMOTED = "promoted"
# A whole window dropped by strict-mode validation failure: recorded so
# the poison batch is not retried forever.
QUARANTINED = "quarantined"
_STATES = (INGESTED, PROMOTED, QUARANTINED)


@dataclass
class JournalEntry:
    """One state transition of one ingest window."""

    seq: int
    state: str
    window: str
    shas: list[str] = field(default_factory=list)
    batches: list[str] = field(default_factory=list)
    snapshot: str | None = None
    parent: str | None = None
    at: str = ""

    def as_dict(self) -> dict:
        payload = {
            "seq": self.seq,
            "state": self.state,
            "window": self.window,
            "batches": self.batches,
            "shas": self.shas,
        }
        if self.snapshot is not None:
            payload["snapshot"] = self.snapshot
        if self.parent is not None:
            payload["parent"] = self.parent
        payload["at"] = self.at
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        if data.get("state") not in _STATES:
            raise ValueError(f"journal entry has unknown state: {data!r}")
        return cls(
            seq=int(data["seq"]),
            state=data["state"],
            window=data["window"],
            shas=list(data.get("shas", [])),
            batches=list(data.get("batches", [])),
            snapshot=data.get("snapshot"),
            parent=data.get("parent"),
            at=data.get("at", ""),
        )


class BatchJournal:
    """Durable, torn-line-tolerant record of completed pipeline steps."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.entries: list[JournalEntry] = self._load()

    # ------------------------------------------------------------------

    def _load(self) -> list[JournalEntry]:
        entries: list[JournalEntry] = []
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return entries
        lines = raw.split(b"\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                entries.append(
                    JournalEntry.from_dict(json.loads(line.decode("utf-8")))
                )
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                if any(later.strip() for later in lines[index + 1:]):
                    raise ValueError(
                        f"journal {self.path} is corrupt at line "
                        f"{index + 1}: {exc}"
                    ) from exc
                # Torn final line from a crash mid-append: drop it — the
                # affected window replays and converges.
                logger.warning(
                    "journal %s: dropping torn final line (%s)",
                    self.path, exc,
                )
                break
        return entries

    def record(
        self,
        state: str,
        window: str,
        shas: list[str],
        batches: list[str],
        snapshot: str | None = None,
        parent: str | None = None,
        seq: int | None = None,
    ) -> JournalEntry:
        """Append one entry durably (flush + fsync) and index it."""
        if state not in _STATES:
            raise ValueError(f"unknown journal state {state!r}")
        entry = JournalEntry(
            seq=self.next_seq() if seq is None else seq,
            state=state,
            window=window,
            shas=list(shas),
            batches=list(batches),
            snapshot=snapshot,
            parent=parent,
            at=datetime.now(timezone.utc).isoformat(),
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry.as_dict(), sort_keys=True) + "\n"
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def next_seq(self) -> int:
        return max((entry.seq for entry in self.entries), default=0) + 1

    def completed_shas(self) -> set[str]:
        """Batch hashes that reached at least the ``ingested`` state."""
        return {
            sha
            for entry in self.entries
            if entry.state in (INGESTED, QUARANTINED)
            for sha in entry.shas
        }

    def unpromoted(self) -> list[JournalEntry]:
        """``ingested`` windows with no matching ``promoted`` entry, in
        commit order — the crash-recovery work list."""
        promoted = {
            entry.seq for entry in self.entries if entry.state == PROMOTED
        }
        return [
            entry
            for entry in self.entries
            if entry.state == INGESTED and entry.seq not in promoted
        ]

    def snapshot_lineage(self) -> list[str]:
        """Snapshot ids committed by this journal, oldest first."""
        return [
            entry.snapshot
            for entry in sorted(
                (e for e in self.entries if e.state == INGESTED),
                key=lambda e: e.seq,
            )
            if entry.snapshot is not None
        ]

    def ingest_counts(self) -> dict[str, int]:
        """How many ``ingested`` entries each batch hash appears in —
        the exactly-once assertion is ``max(values) == 1``."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            if entry.state != INGESTED:
                continue
            for sha in entry.shas:
                counts[sha] = counts.get(sha, 0) + 1
        return counts
