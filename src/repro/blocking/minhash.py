"""MinHash signatures over character bigram sets.

A MinHash signature of a string's bigram set approximates its Jaccard
similarity to other strings: the probability that two signatures agree at
one position equals the Jaccard coefficient of the underlying sets.  The
LSH blocker bands these signatures to bucket likely-similar names.

Two computation paths produce bit-identical signatures:

* :meth:`MinHasher.signature` — the scalar reference path, one string at
  a time;
* :meth:`MinHasher.signature_matrix` — a vectorised numpy pass over a
  batch of strings, used by the parallel resolution pipeline.  All
  arithmetic stays in exact 64-bit integer operations (the 61-bit
  Mersenne modulus is reduced with shift/mask identities, never
  floating point), so every matrix row equals the scalar signature —
  a property test enforces this.
"""

from __future__ import annotations

import zlib
from typing import Sequence

from repro.similarity.qgram import qgrams
from repro.utils.rng import make_rng

try:  # numpy accelerates the batch path; the scalar path needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

__all__ = ["MinHasher"]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1
# Low 29 bits of a 61-bit value: used to reduce ``x * 2**32 mod p`` via
# ``x*2**32 = (x >> 29) * 2**61 + (x & MASK29) * 2**32 ≡ (x >> 29) +
# ((x & MASK29) << 32)  (mod 2**61 - 1)``.
_MASK_29 = (1 << 29) - 1


class MinHasher:
    """Computes fixed-length MinHash signatures of strings.

    Uses the standard family of universal hash functions
    ``h_i(x) = (a_i * x + b_i) mod p`` over 61-bit arithmetic, seeded
    deterministically so signatures are stable across runs.
    """

    def __init__(self, n_hashes: int = 64, q: int = 2, seed: int = 42) -> None:
        if n_hashes <= 0:
            raise ValueError(f"n_hashes must be positive, got {n_hashes}")
        self.n_hashes = n_hashes
        self.q = q
        rng = make_rng(seed)
        self._params = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(0, _MERSENNE_PRIME))
            for _ in range(n_hashes)
        ]
        # The all-max sentinel for gram-less strings is immutable and
        # requested for every such string, so it is built exactly once.
        self._empty_signature: tuple[int, ...] = tuple(
            [_MAX_HASH + 1] * n_hashes
        )
        self._param_matrix = None  # lazy (n_hashes, 2) uint64 array

    def _gram_hashes(self, value: str) -> list[int]:
        # crc32 rather than built-in hash(): string hashing is randomised
        # per process, and signatures must be stable across runs.
        return [
            zlib.crc32(g.encode("utf-8")) & _MAX_HASH
            for g in qgrams(value, q=self.q)
        ]

    def signature(self, value: str) -> tuple[int, ...]:
        """MinHash signature of ``value``'s bigram set.

        The empty string gets a sentinel all-max signature that collides
        with nothing real.
        """
        gram_hashes = self._gram_hashes(value)
        if not gram_hashes:
            return self._empty_signature
        signature = []
        for a, b in self._params:
            signature.append(
                min(((a * gh + b) % _MERSENNE_PRIME) & _MAX_HASH for gh in gram_hashes)
            )
        return tuple(signature)

    def signature_matrix(self, values: Sequence[str]) -> "_np.ndarray":
        """Signatures of ``values`` as one ``(len(values), n_hashes)`` pass.

        Row ``i`` equals ``signature(values[i])`` exactly: the universal
        hashes are evaluated with 64-bit integer arithmetic only, the
        Mersenne modulus reduced by shift/mask identities (``2**61 ≡ 1``
        mod ``p``), and the per-string minimum taken with a segmented
        reduction — no rounding anywhere.
        """
        if _np is None:  # pragma: no cover - numpy is a baked-in dep
            raise RuntimeError("signature_matrix requires numpy")
        out = _np.empty((len(values), self.n_hashes), dtype=_np.uint64)
        rows: list[int] = []
        starts: list[int] = []
        flat: list[int] = []
        for i, value in enumerate(values):
            gram_hashes = self._gram_hashes(value)
            if not gram_hashes:
                out[i, :] = _MAX_HASH + 1
                continue
            rows.append(i)
            starts.append(len(flat))
            flat.extend(gram_hashes)
        if not rows:
            return out
        if self._param_matrix is None:
            self._param_matrix = _np.array(self._params, dtype=_np.uint64)
        prime = _np.uint64(_MERSENNE_PRIME)

        def mod_mersenne(x: "_np.ndarray") -> "_np.ndarray":
            # For x < 2**64: x ≡ (x >> 61) + (x & p) (mod p), and the sum
            # is at most p + 7, so one conditional subtract normalises.
            folded = (x >> _np.uint64(61)) + (x & prime)
            return _np.where(folded >= prime, folded - prime, folded)

        grams = _np.asarray(flat, dtype=_np.uint64)[None, :]  # (1, G)
        a = self._param_matrix[:, 0:1]  # (H, 1)
        b = self._param_matrix[:, 1:2]
        # a < 2**61 and gram < 2**32, so a*gram would overflow uint64;
        # split a into 32-bit halves and reduce each product separately.
        a_lo = a & _np.uint64(0xFFFFFFFF)
        a_hi = a >> _np.uint64(32)
        low = mod_mersenne(a_lo * grams)  # a_lo*g < 2**64
        high = a_hi * grams  # < 2**61; still to be scaled by 2**32 mod p
        high = (high >> _np.uint64(29)) + (
            (high & _np.uint64(_MASK_29)) << _np.uint64(32)
        )
        # low < p, high < 2**61 + 2**32, b < p: the sum fits in 63 bits.
        hashed = mod_mersenne(low + high + b) & _np.uint64(_MAX_HASH)
        mins = _np.minimum.reduceat(
            hashed, _np.asarray(starts, dtype=_np.int64), axis=1
        )  # (H, n_nonempty): segment j spans gram range of value rows[j]
        out[_np.asarray(rows, dtype=_np.int64), :] = mins.T
        return out

    def estimate_jaccard(self, sig_a: tuple[int, ...], sig_b: tuple[int, ...]) -> float:
        """Fraction of agreeing positions — an unbiased Jaccard estimate."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures have different lengths")
        agreements = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agreements / len(sig_a)
