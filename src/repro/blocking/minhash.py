"""MinHash signatures over character bigram sets.

A MinHash signature of a string's bigram set approximates its Jaccard
similarity to other strings: the probability that two signatures agree at
one position equals the Jaccard coefficient of the underlying sets.  The
LSH blocker bands these signatures to bucket likely-similar names.
"""

from __future__ import annotations

import zlib

from repro.similarity.qgram import qgrams
from repro.utils.rng import make_rng

__all__ = ["MinHasher"]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


class MinHasher:
    """Computes fixed-length MinHash signatures of strings.

    Uses the standard family of universal hash functions
    ``h_i(x) = (a_i * x + b_i) mod p`` over 61-bit arithmetic, seeded
    deterministically so signatures are stable across runs.
    """

    def __init__(self, n_hashes: int = 64, q: int = 2, seed: int = 42) -> None:
        if n_hashes <= 0:
            raise ValueError(f"n_hashes must be positive, got {n_hashes}")
        self.n_hashes = n_hashes
        self.q = q
        rng = make_rng(seed)
        self._params = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(0, _MERSENNE_PRIME))
            for _ in range(n_hashes)
        ]

    def signature(self, value: str) -> tuple[int, ...]:
        """MinHash signature of ``value``'s bigram set.

        The empty string gets a sentinel all-max signature that collides
        with nothing real.
        """
        grams = qgrams(value, q=self.q)
        if not grams:
            return tuple([_MAX_HASH + 1] * self.n_hashes)
        # crc32 rather than built-in hash(): string hashing is randomised
        # per process, and signatures must be stable across runs.
        gram_hashes = [zlib.crc32(g.encode("utf-8")) & _MAX_HASH for g in grams]
        signature = []
        for a, b in self._params:
            signature.append(
                min(((a * gh + b) % _MERSENNE_PRIME) & _MAX_HASH for gh in gram_hashes)
            )
        return tuple(signature)

    def estimate_jaccard(self, sig_a: tuple[int, ...], sig_b: tuple[int, ...]) -> float:
        """Fraction of agreeing positions — an unbiased Jaccard estimate."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures have different lengths")
        agreements = sum(1 for x, y in zip(sig_a, sig_b) if x == y)
        return agreements / len(sig_a)
