"""Standard (exact-key) blocking.

Each record's block key is the concatenation of selected attribute values
(by default first-name initial + surname prefix).  Cheap and simple, but
brittle under typos — it serves as the low-recall ablation point in the
blocking bench.
"""

from __future__ import annotations

from repro.data.records import Record

__all__ = ["StandardBlocker"]


class StandardBlocker:
    """Blocks on exact prefixes of the given attributes.

    ``prefix_lengths`` maps attribute name to how many leading characters
    of the value participate in the key; 0 means the whole value.
    """

    def __init__(
        self,
        prefix_lengths: dict[str, int] | None = None,
    ) -> None:
        if prefix_lengths is None:
            prefix_lengths = {"first_name": 1, "surname": 4}
        if not prefix_lengths:
            raise ValueError("need at least one blocking attribute")
        self.prefix_lengths = prefix_lengths

    def block_keys(self, record: Record) -> list[str]:
        parts: list[str] = []
        for attribute, length in self.prefix_lengths.items():
            value = record.get(attribute)
            if value is None:
                return []  # cannot form the composite key
            value = value.lower()
            parts.append(value[:length] if length > 0 else value)
        return ["|".join(parts)]
