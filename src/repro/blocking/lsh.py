"""Locality-sensitive-hashing blocker (MinHash + banding).

This is the paper's blocking technique (Section 4.1): "a locality
sensitive hashing based blocking technique ... that maps similar QID value
pairs to the same hash value to group likely matches".

The signature of a record is the MinHash of the bigrams of its
concatenated name attributes; the signature is split into ``n_bands``
bands of ``rows_per_band`` rows, and each band hashes to a bucket key.
Records sharing any bucket become candidates.  With Jaccard similarity
``s``, the probability of sharing a bucket is ``1 - (1 - s^r)^b`` — the
familiar S-curve whose threshold is tuned by (b, r).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.blocking.minhash import MinHasher
from repro.data.normalize import canonical_name_phrase
from repro.data.records import Record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["LshBlocker"]


class LshBlocker:
    """MinHash-LSH blocking over the concatenated name attributes.

    Defaults (16 bands × 4 rows = 64 hashes) put the S-curve threshold
    near Jaccard ≈ 0.5, which for bigram sets of personal names admits
    one-or-two-typo variants while pruning unrelated names.

    ``metrics`` counts signature-cache hits and misses
    (``lsh.signature_cache_hits`` / ``_misses``) — the cache's value
    grows with name skew, so the ratio is worth watching at scale.
    """

    def __init__(
        self,
        attributes: tuple[str, ...] = ("first_name", "surname"),
        n_bands: int = 16,
        rows_per_band: int = 4,
        seed: int = 42,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if n_bands <= 0 or rows_per_band <= 0:
            raise ValueError("n_bands and rows_per_band must be positive")
        if not attributes:
            raise ValueError("need at least one blocking attribute")
        self.attributes = attributes
        self.n_bands = n_bands
        self.rows_per_band = rows_per_band
        self.metrics = metrics
        self._hasher = MinHasher(n_hashes=n_bands * rows_per_band, seed=seed)
        self._signature_cache: dict[str, tuple[int, ...]] = {}

    def _blocking_string(self, record: Record) -> str | None:
        parts = [record.get(a) or "" for a in self.attributes]
        joined = " ".join(p for p in parts if p).strip().lower()
        if not joined:
            return None
        # Standardise documented name variants so "effie"/"euphemia" share
        # a signature; scoring still compares the raw values.
        return canonical_name_phrase(joined)

    def prepare(self, records: Iterable[Record]) -> None:
        """Pre-fill the signature cache with one vectorised MinHash pass.

        Computes every distinct blocking string's signature via
        :meth:`MinHasher.signature_matrix` — the rows are bit-identical to
        scalar :meth:`MinHasher.signature`, so subsequent ``block_keys``
        calls produce exactly the keys the scalar path would.  Prepared
        values count as cache hits when ``block_keys`` later reads them;
        ``lsh.signatures_vectorized`` counts the entries filled here.
        """
        values: list[str] = []
        seen: set[str] = set()
        for record in records:
            value = self._blocking_string(record)
            if value is None or value in seen or value in self._signature_cache:
                continue
            seen.add(value)
            values.append(value)
        if not values:
            return
        matrix = self._hasher.signature_matrix(values)
        # .tolist() yields plain Python ints, so the cached tuples are
        # indistinguishable (hash and equality) from scalar signatures.
        for value, row in zip(values, matrix.tolist()):
            self._signature_cache[value] = tuple(row)
        if self.metrics is not None:
            self.metrics.inc("lsh.signatures_vectorized", len(values))

    def block_keys(self, record: Record) -> list[str]:
        value = self._blocking_string(record)
        if value is None:
            return []
        signature = self._signature_cache.get(value)
        if signature is None:
            signature = self._hasher.signature(value)
            self._signature_cache[value] = signature
            if self.metrics is not None:
                self.metrics.inc("lsh.signature_cache_misses")
        elif self.metrics is not None:
            self.metrics.inc("lsh.signature_cache_hits")
        keys = []
        r = self.rows_per_band
        for band in range(self.n_bands):
            band_slice = signature[band * r : (band + 1) * r]
            keys.append(f"{band}:{hash(band_slice) & 0xFFFFFFFF:x}")
        return keys

    def estimated_pair_probability(self, jaccard: float) -> float:
        """Theoretical probability a pair with ``jaccard`` shares a bucket."""
        if not 0.0 <= jaccard <= 1.0:
            raise ValueError(f"jaccard out of range: {jaccard}")
        return 1.0 - (1.0 - jaccard**self.rows_per_band) ** self.n_bands
