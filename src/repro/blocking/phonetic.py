"""Phonetic blocking: block key = Soundex (or NYSIIS) of name attributes.

More typo-tolerant than exact-key blocking ("macdonald" and "mcdonald"
share a code) at the cost of larger blocks for common codes.
"""

from __future__ import annotations

from typing import Callable

from repro.data.records import Record
from repro.similarity.phonetic import soundex

__all__ = ["PhoneticBlocker"]


class PhoneticBlocker:
    """Blocks on the phonetic codes of the configured attributes.

    Emits one key per attribute (not a composite), so records agreeing on
    *either* name phonetically become candidates.
    """

    def __init__(
        self,
        attributes: tuple[str, ...] = ("first_name", "surname"),
        encoder: Callable[[str], str] = soundex,
    ) -> None:
        if not attributes:
            raise ValueError("need at least one blocking attribute")
        self.attributes = attributes
        self.encoder = encoder

    def block_keys(self, record: Record) -> list[str]:
        keys = []
        for attribute in self.attributes:
            value = record.get(attribute)
            if value is not None:
                keys.append(f"{attribute}:{self.encoder(value.lower())}")
        return keys
