"""Candidate record-pair generation: blocking + role/temporal filters.

Implements the two filtering steps of paper Section 4.1: after blocking,
record pairs of *impossible role types* (incompatible genders, unlinkable
role combinations, same certificate) are dropped, and pairs violating the
temporal constraints (non-overlapping plausible birth-year ranges) are
dropped.  What remains becomes the relational nodes of the dependency
graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.blocking.base import Blocker, block_key_pairs
from repro.data.records import Dataset, Record
from repro.data.roles import CENSUS_ROLES, LINKABLE_ROLE_PAIRS, Role

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CandidatePair", "generate_candidate_pairs", "roles_linkable"]


@dataclass(frozen=True)
class CandidatePair:
    """An unordered pair of records that survived blocking and filtering.

    ``rid_a < rid_b`` always holds, so a pair has one canonical identity.
    """

    rid_a: int
    rid_b: int

    def __post_init__(self) -> None:
        if self.rid_a >= self.rid_b:
            raise ValueError(f"pair must be ordered: ({self.rid_a}, {self.rid_b})")

    def key(self) -> tuple[int, int]:
        return (self.rid_a, self.rid_b)


def roles_linkable(role_a: Role, role_b: Role) -> bool:
    """True when one person could hold both roles (see repro.data.roles)."""
    pair = tuple(sorted((role_a, role_b), key=lambda r: r.value))
    return pair in LINKABLE_ROLE_PAIRS


def _genders_compatible(a: Record, b: Record) -> bool:
    gender_a, gender_b = a.gender, b.gender
    if gender_a is None or gender_b is None:
        return True  # unknown gender carries no evidence either way
    return gender_a == gender_b


def _temporally_compatible(a: Record, b: Record, slack_years: int) -> bool:
    lo_a, hi_a = a.birth_range()
    lo_b, hi_b = b.birth_range()
    return lo_a - slack_years <= hi_b and lo_b - slack_years <= hi_a


def generate_candidate_pairs(
    dataset: Dataset,
    blocker: Blocker,
    temporal_slack_years: int = 2,
    roles: Iterable[Role] | None = None,
    metrics: "MetricsRegistry | None" = None,
) -> Iterator[CandidatePair]:
    """Yield filtered candidate pairs for ``dataset`` under ``blocker``.

    Filters applied, in order:

    1. both records share a block key (the blocker's job);
    2. the records come from *different* certificates — two roles on one
       certificate are distinct people by construction;
    3. the role combination is linkable and genders agree;
    4. the plausible birth-year ranges overlap within ``slack`` years
       (the temporal constraints of Section 4.2.2 as a pre-filter).

    ``roles`` optionally restricts which records participate at all.

    ``metrics``, when given, receives per-filter rejection counters
    (``blocking.rejected_*``), the surviving ``blocking.candidate_pairs``
    count, and the ``blocking.reduction_ratio`` gauge (fraction of the
    full cross product pruned away) once the generator is exhausted.
    """
    if roles is None:
        records: list[Record] = list(dataset)
    else:
        records = dataset.records_with_role(roles)
    candidates = 0
    for rid_a, rid_b in block_key_pairs(records, blocker, metrics=metrics):
        a, b = dataset.record(rid_a), dataset.record(rid_b)
        if a.cert_id == b.cert_id:
            if metrics is not None:
                metrics.inc("blocking.rejected_same_cert")
            continue
        if not roles_linkable(a.role, b.role):
            if metrics is not None:
                metrics.inc("blocking.rejected_role")
            continue
        if (
            a.role in CENSUS_ROLES
            and b.role in CENSUS_ROLES
            and a.event_year == b.event_year
        ):
            # One household per person per census.
            if metrics is not None:
                metrics.inc("blocking.rejected_same_census")
            continue
        if not _genders_compatible(a, b):
            if metrics is not None:
                metrics.inc("blocking.rejected_gender")
            continue
        if not _temporally_compatible(a, b, temporal_slack_years):
            if metrics is not None:
                metrics.inc("blocking.rejected_temporal")
            continue
        candidates += 1
        yield CandidatePair(rid_a, rid_b)
    if metrics is not None:
        metrics.inc("blocking.candidate_pairs", candidates)
        total = len(records) * (len(records) - 1) // 2
        if total:
            metrics.set_gauge("blocking.reduction_ratio", 1.0 - candidates / total)
