"""Sorted-neighbourhood blocking (Hernández & Stolfo).

Records are sorted by a key (surname + first name by default) and a
window of size ``w`` slides over the sorted order; records within a
window become candidates.  The dynamic variant of this method is what
Ramadan et al. (cited by the paper) use for real-time query-time ER.
Included as a third blocking family for the blocking ablation.

Implementation note: the generic :class:`~repro.blocking.base.Blocker`
protocol is key-based, so the window is expressed as overlapping key
buckets — record at sorted position ``i`` emits keys ``i // s`` and
``i // s + 1`` for stride ``s = ceil(w / 2)``, which guarantees any two
records within ``w/2`` positions share a bucket and bounds bucket size
by ``w``.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.data.normalize import canonical_name_phrase
from repro.data.records import Record

__all__ = ["SortedNeighbourhoodBlocker"]


class SortedNeighbourhoodBlocker:
    """Window blocking over a lexicographic sorting key.

    Unlike the hash-based blockers this one is *stateful*: it must see
    the full record collection up front (``fit``) to establish the sorted
    order.  ``block_keys`` then answers from the fitted positions.
    """

    def __init__(
        self,
        window: int = 10,
        attributes: tuple[str, ...] = ("surname", "first_name"),
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        if not attributes:
            raise ValueError("need at least one key attribute")
        self.window = window
        self.attributes = attributes
        self._positions: dict[int, int] = {}
        self._stride = max(1, math.ceil(window / 2))

    def _sort_key(self, record: Record) -> str | None:
        parts = []
        for attribute in self.attributes:
            value = record.get(attribute)
            if value is None:
                return None
            parts.append(canonical_name_phrase(value.lower()))
        return "|".join(parts)

    def fit(self, records: Iterable[Record]) -> "SortedNeighbourhoodBlocker":
        """Establish the sorted order over ``records``."""
        keyed = []
        for record in records:
            key = self._sort_key(record)
            if key is not None:
                keyed.append((key, record.record_id))
        keyed.sort()
        self._positions = {rid: i for i, (_, rid) in enumerate(keyed)}
        return self

    def block_keys(self, record: Record) -> list[str]:
        position = self._positions.get(record.record_id)
        if position is None:
            return []
        bucket = position // self._stride
        return [f"snb:{bucket}", f"snb:{bucket + 1}"]
