"""Blocker protocol and helpers shared by all blocking strategies."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Protocol

from repro.data.records import Record

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["Blocker", "block_key_pairs", "BLOCK_SIZE_BUCKETS"]

# Upper bounds for the block-size histogram: 1, 2, 4, ... 4096 members.
BLOCK_SIZE_BUCKETS = [float(2**i) for i in range(13)]


class Blocker(Protocol):
    """Strategy mapping each record to one or more block keys.

    Records sharing at least one block key become candidate pairs.  A
    record mapped to no keys is never compared (this happens for records
    whose blocking attributes are all missing).
    """

    def block_keys(self, record: Record) -> list[str]:
        """Block keys for ``record``."""
        ...


def block_key_pairs(
    records: Iterable[Record],
    blocker: Blocker,
    metrics: "MetricsRegistry | None" = None,
) -> Iterator[tuple[int, int]]:
    """Yield unique unordered record-id pairs sharing a block key.

    Pairs are deduplicated across blocks (a pair sharing several keys is
    yielded once) and yielded as sorted ``(low_id, high_id)`` tuples.

    ``metrics``, when given, receives the block-size distribution
    (``blocking.block_size`` histogram, one observation per block) and
    ``blocking.blocks`` / ``blocking.raw_pairs`` counters.
    """
    blocks: dict[str, list[int]] = {}
    for record in records:
        for key in blocker.block_keys(record):
            blocks.setdefault(key, []).append(record.record_id)
    if metrics is not None:
        metrics.inc("blocking.blocks", len(blocks))
        histogram = metrics.histogram("blocking.block_size", BLOCK_SIZE_BUCKETS)
        for members in blocks.values():
            histogram.observe(len(members))
    seen: set[tuple[int, int]] = set()
    for members in blocks.values():
        members.sort()
        for i, rid_a in enumerate(members):
            for rid_b in members[i + 1 :]:
                pair = (rid_a, rid_b)
                if pair not in seen:
                    seen.add(pair)
                    yield pair
    if metrics is not None:
        metrics.inc("blocking.raw_pairs", len(seen))
