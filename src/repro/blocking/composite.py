"""Composite blocker: union of several blocking strategies.

Records become candidates when *any* member blocker co-blocks them.  SNAPS
uses an LSH blocker unioned with a composite phonetic key
(Soundex(first name) | Soundex(surname)): MinHash-LSH catches small edit
variations, the phonetic key catches sound-alike respellings that bigram
overlap misses ("euphemia"/"effie" style substitutions still need the
variant dictionary, but "macdonald"/"mcdonald" collapse to one code).
"""

from __future__ import annotations

from repro.blocking.base import Blocker
from repro.data.normalize import canonical_name_phrase
from repro.data.records import Record
from repro.similarity.phonetic import soundex

__all__ = ["CompositeBlocker", "PhoneticNameKeyBlocker"]


class PhoneticNameKeyBlocker:
    """Single composite key: Soundex(first) | Soundex(surname).

    Unlike :class:`~repro.blocking.phonetic.PhoneticBlocker` (one key per
    attribute, producing very large blocks for common names), the
    composite key keeps blocks small enough for population-scale use.
    """

    def __init__(self, attributes: tuple[str, str] = ("first_name", "surname")) -> None:
        self.attributes = attributes

    def block_keys(self, record: Record) -> list[str]:
        codes = []
        for attribute in self.attributes:
            value = record.get(attribute)
            if value is None:
                return []
            codes.append(soundex(canonical_name_phrase(value.lower())))
        return ["px:" + "|".join(codes)]


class CompositeBlocker:
    """Union of member blockers' key sets (keys are namespaced per member
    so different strategies never collide on a key)."""

    def __init__(self, blockers: list[Blocker]) -> None:
        if not blockers:
            raise ValueError("need at least one member blocker")
        self.blockers = blockers

    def prepare(self, records: list[Record]) -> None:
        """Forward batch preparation to members that support it."""
        for blocker in self.blockers:
            prepare = getattr(blocker, "prepare", None)
            if prepare is not None:
                prepare(records)

    def block_keys(self, record: Record) -> list[str]:
        keys: list[str] = []
        for index, blocker in enumerate(self.blockers):
            keys.extend(f"{index}#{key}" for key in blocker.block_keys(record))
        return keys
