"""Blocking/indexing substrate: reduce the quadratic comparison space.

SNAPS and all baselines use the same blocking front-end (paper Section 10,
"Implementation and Parameter Settings"): a locality-sensitive-hashing
(MinHash-over-bigrams) blocker that maps records with similar name strings
to common buckets.  Standard key blocking and phonetic blocking are also
provided for the blocking ablation bench.

A blocker consumes records and yields *candidate record pairs*; the
role-compatibility and temporal filters of Section 4.1 are applied on top
by :func:`repro.blocking.candidates.generate_candidate_pairs`.
"""

from repro.blocking.base import Blocker, block_key_pairs
from repro.blocking.standard import StandardBlocker
from repro.blocking.phonetic import PhoneticBlocker
from repro.blocking.minhash import MinHasher
from repro.blocking.lsh import LshBlocker
from repro.blocking.sorted_neighbourhood import SortedNeighbourhoodBlocker
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.candidates import CandidatePair, generate_candidate_pairs

__all__ = [
    "Blocker",
    "block_key_pairs",
    "StandardBlocker",
    "PhoneticBlocker",
    "PhoneticNameKeyBlocker",
    "CompositeBlocker",
    "MinHasher",
    "LshBlocker",
    "SortedNeighbourhoodBlocker",
    "CandidatePair",
    "generate_candidate_pairs",
]
