"""q-gram (character n-gram) extraction and overlap similarity.

Bigrams (q=2) drive the similarity-aware index of Section 6: two strings
are only candidate approximate matches if they share at least one bigram,
which is how the pre-computation and the query-time fallback prune the
comparison space.
"""

from __future__ import annotations

__all__ = ["qgrams", "bigrams", "qgram_similarity"]


def qgrams(value: str, q: int = 2, padded: bool = False) -> set[str]:
    """Return the set of ``q``-length substrings of ``value``.

    With ``padded=True`` the string is wrapped in ``q - 1`` sentinel
    characters on each side so leading/trailing characters contribute full
    weight.  Strings shorter than ``q`` (unpadded) yield the whole string
    as a single gram so that short names still index somewhere.

    >>> sorted(qgrams("anna"))
    ['an', 'na', 'nn']
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if not value:
        return set()
    if padded:
        pad = "#" * (q - 1)
        value = f"{pad}{value}{pad}"
    if len(value) < q:
        return {value}
    return {value[i : i + q] for i in range(len(value) - q + 1)}


def bigrams(value: str) -> set[str]:
    """Convenience wrapper: unpadded 2-grams of ``value``."""
    return qgrams(value, q=2)


def qgram_similarity(a: str, b: str, q: int = 2, padded: bool = False) -> float:
    """Jaccard overlap of the two strings' q-gram sets, in [0, 1].

    >>> qgram_similarity("anna", "anna")
    1.0
    """
    if a == b:
        return 1.0
    grams_a = qgrams(a, q=q, padded=padded)
    grams_b = qgrams(b, q=q, padded=padded)
    if not grams_a and not grams_b:
        return 1.0
    if not grams_a or not grams_b:
        return 0.0
    union = len(grams_a | grams_b)
    return len(grams_a & grams_b) / union
