"""Set-overlap similarities: Jaccard and Dice coefficients.

The paper uses the Jaccard coefficient for general textual strings
(addresses, occupations, causes of death) where token overlap matters more
than character order.
"""

from __future__ import annotations

from typing import Collection, Hashable

__all__ = ["jaccard_similarity", "token_jaccard", "dice_similarity"]


def jaccard_similarity(a: Collection[Hashable], b: Collection[Hashable]) -> float:
    """Jaccard coefficient |a ∩ b| / |a ∪ b| of two collections, in [0, 1].

    Two empty collections compare as identical (1.0).

    >>> jaccard_similarity({1, 2}, {2, 3})
    0.3333333333333333
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = len(set_a | set_b)
    if union == 0:
        return 1.0
    return len(set_a & set_b) / union


def token_jaccard(a: str, b: str) -> float:
    """Jaccard coefficient over whitespace-separated lowercase tokens.

    This is the comparator used for multi-word strings such as street
    addresses ("high street kilmarnock") and occupations.

    >>> token_jaccard("high street", "high road")
    0.3333333333333333
    """
    return jaccard_similarity(a.lower().split(), b.lower().split())


def dice_similarity(a: Collection[Hashable], b: Collection[Hashable]) -> float:
    """Sørensen-Dice coefficient 2|a ∩ b| / (|a| + |b|), in [0, 1].

    >>> dice_similarity({1, 2}, {2, 3})
    0.5
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    denom = len(set_a) + len(set_b)
    if denom == 0:
        return 1.0
    return 2.0 * len(set_a & set_b) / denom
