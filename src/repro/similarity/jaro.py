"""Jaro and Jaro-Winkler string similarity.

Jaro-Winkler is the paper's comparator of choice for personal names
(Section 4.1 and Section 6): it rewards agreement in the first few
characters, which matches how name variants arise ("cathrine"/"catherine").
"""

from __future__ import annotations

__all__ = ["jaro_similarity", "jaro_winkler_similarity"]


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in [0, 1].

    Counts characters that match within a sliding window of half the longer
    string, and penalises transposed matches.

    >>> round(jaro_similarity("martha", "marhta"), 4)
    0.9444
    """
    if a == b:
        return 1.0
    len_a, len_b = len(a), len(b)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    if window < 0:
        window = 0
    a_flags = [False] * len_a
    b_flags = [False] * len_b
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(i + window + 1, len_b)
        for j in range(lo, hi):
            if not b_flags[j] and b[j] == ca:
                a_flags[i] = b_flags[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if a_flags[i]:
            while not b_flags[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a
        + matches / len_b
        + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro-Winkler similarity in [0, 1].

    Boosts the Jaro score by up to four characters of common prefix:
    ``jw = jaro + prefix_len * prefix_weight * (1 - jaro)``.

    ``prefix_weight`` must be at most 0.25 so the result stays <= 1.

    >>> jaro_winkler_similarity("smith", "smith")
    1.0
    >>> jaro_winkler_similarity("abc", "xyz")
    0.0
    """
    if not 0.0 <= prefix_weight <= 0.25:
        raise ValueError(f"prefix_weight must be in [0, 0.25], got {prefix_weight}")
    jaro = jaro_similarity(a, b)
    if jaro == 0.0 or jaro == 1.0:
        return jaro
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix == 4:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)
