"""Geographic distance similarity for geocoded addresses.

The paper geocodes Isle of Skye addresses and scores address agreement by
the distance between locations (Section 10, "Implementation and Parameter
Settings").  We reproduce that code path against a synthetic gazetteer
(see ``repro.data.names``): similarity decays exponentially with the
great-circle distance between two points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["GeoPoint", "haversine_km", "geo_similarity"]

_EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between ``a`` and ``b`` in kilometres.

    >>> haversine_km(GeoPoint(0, 0), GeoPoint(0, 0))
    0.0
    """
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * _EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def geo_similarity(a: GeoPoint, b: GeoPoint, half_distance_km: float = 5.0) -> float:
    """Distance-based similarity in (0, 1]: 1 at zero distance, 0.5 at
    ``half_distance_km``, decaying exponentially beyond.

    ``half_distance_km`` should reflect plausible residential mobility for
    the population; 5 km is a sensible default for 19th-century parishes.

    >>> geo_similarity(GeoPoint(57.2, -6.2), GeoPoint(57.2, -6.2))
    1.0
    """
    if half_distance_km <= 0:
        raise ValueError(f"half_distance_km must be positive, got {half_distance_km}")
    distance = haversine_km(a, b)
    return 0.5 ** (distance / half_distance_km)
