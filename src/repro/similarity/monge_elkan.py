"""Monge-Elkan similarity for multi-token names.

Compound names ("mary ann" vs "ann mary", "margaret kate" vs "margaret")
compare poorly under whole-string Jaro-Winkler because token order and
count dominate.  Monge-Elkan scores each token of one string against its
best-matching token of the other and averages — the standard remedy.  The
symmetric variant averages both directions so the function stays
symmetric like every other comparator in the library.
"""

from __future__ import annotations

from typing import Callable

from repro.similarity.jaro import jaro_winkler_similarity

__all__ = ["monge_elkan_similarity"]


def _directed(tokens_a: list[str], tokens_b: list[str],
              inner: Callable[[str, str], float]) -> float:
    total = 0.0
    for token_a in tokens_a:
        total += max(inner(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)


def monge_elkan_similarity(
    a: str,
    b: str,
    inner: Callable[[str, str], float] = jaro_winkler_similarity,
) -> float:
    """Symmetric Monge-Elkan similarity in [0, 1].

    >>> monge_elkan_similarity("mary ann", "ann mary")
    1.0
    >>> monge_elkan_similarity("", "")
    1.0
    """
    tokens_a = a.split()
    tokens_b = b.split()
    if not tokens_a and not tokens_b:
        return 1.0
    if not tokens_a or not tokens_b:
        return 0.0
    forward = _directed(tokens_a, tokens_b, inner)
    backward = _directed(tokens_b, tokens_a, inner)
    return (forward + backward) / 2.0
