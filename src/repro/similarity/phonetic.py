"""Phonetic encodings: Soundex and NYSIIS.

Used by the phonetic blocking baseline and by the anonymiser's name
clustering — names that *sound* the same land in the same block even when
spelled quite differently ("macdonald"/"mcdonald").
"""

from __future__ import annotations

__all__ = ["soundex", "nysiis"]

_SOUNDEX_CODES = {
    "b": "1", "f": "1", "p": "1", "v": "1",
    "c": "2", "g": "2", "j": "2", "k": "2", "q": "2",
    "s": "2", "x": "2", "z": "2",
    "d": "3", "t": "3",
    "l": "4",
    "m": "5", "n": "5",
    "r": "6",
}


def soundex(value: str, length: int = 4) -> str:
    """American Soundex code of ``value`` (default 4 characters).

    Empty or fully non-alphabetic input encodes to ``"0" * length`` so that
    blocking on the code never crashes on dirty data.

    >>> soundex("robert")
    'R163'
    >>> soundex("rupert")
    'R163'
    """
    letters = [c for c in value.lower() if c.isalpha()]
    if not letters:
        return "0" * length
    first = letters[0]
    encoded = [first.upper()]
    prev_code = _SOUNDEX_CODES.get(first, "")
    for char in letters[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if char in "hw":
            # h and w are transparent: they do not reset the previous code.
            continue
        if code and code != prev_code:
            encoded.append(code)
            if len(encoded) == length:
                break
        prev_code = code
    return "".join(encoded).ljust(length, "0")


def nysiis(value: str) -> str:
    """NYSIIS phonetic code (New York State Identification and Intelligence
    System), a finer-grained alternative to Soundex for Anglo names.

    >>> nysiis("macdonald") == nysiis("mcdonald")
    True
    """
    word = "".join(c for c in value.lower() if c.isalpha())
    if not word:
        return ""
    # Initial-letter transformations.
    for old, new in (
        ("mac", "mcc"), ("kn", "nn"), ("k", "c"),
        ("ph", "ff"), ("pf", "ff"), ("sch", "sss"),
    ):
        if word.startswith(old):
            word = new + word[len(old):]
            break
    # Final-letter transformations.
    for old, new in (("ee", "y"), ("ie", "y"), ("dt", "d"), ("rt", "d"),
                     ("rd", "d"), ("nt", "d"), ("nd", "d")):
        if word.endswith(old):
            word = word[: -len(old)] + new
            break
    key = [word[0]]
    i = 1
    while i < len(word):
        chunk = word[i:]
        if chunk.startswith("ev"):
            repl, step = "af", 2
        elif word[i] in "aeiou":
            repl, step = "a", 1
        elif chunk.startswith("q"):
            repl, step = "g", 1
        elif chunk.startswith("z"):
            repl, step = "s", 1
        elif chunk.startswith("m"):
            repl, step = "n", 1
        elif chunk.startswith("kn"):
            repl, step = "nn", 2
        elif chunk.startswith("k"):
            repl, step = "c", 1
        elif chunk.startswith("sch"):
            repl, step = "sss", 3
        elif chunk.startswith("ph"):
            repl, step = "ff", 2
        elif word[i] == "h" and (
            word[i - 1] not in "aeiou"
            or (i + 1 < len(word) and word[i + 1] not in "aeiou")
        ):
            repl, step = word[i - 1], 1
        elif word[i] == "w" and word[i - 1] in "aeiou":
            repl, step = "a", 1
        else:
            repl, step = word[i], 1
        for char in repl:
            if char != key[-1]:
                key.append(char)
        i += step
    # Trim trailing s / ay / a.
    out = "".join(key)
    if out.endswith("s"):
        out = out[:-1]
    if out.endswith("ay"):
        out = out[:-2] + "y"
    if len(out) > 1 and out.endswith("a"):
        out = out[:-1]
    return out.upper()
