"""Approximate string, numeric, and geographic comparison functions.

This package is the comparison substrate of SNAPS (paper Section 4.1): all
similarities are normalised to [0, 1] where 1 means identical and 0 means
no resemblance.  The choice of comparator per attribute follows the paper:
Jaro-Winkler for personal names, Jaccard for other textual strings,
maximum-absolute-difference for numeric values (years), and geodesic
distance for geocoded addresses.
"""

from repro.similarity.levenshtein import (
    damerau_levenshtein_distance,
    levenshtein_distance,
    levenshtein_similarity,
)
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.qgram import bigrams, qgram_similarity, qgrams
from repro.similarity.jaccard import dice_similarity, jaccard_similarity, token_jaccard
from repro.similarity.monge_elkan import monge_elkan_similarity
from repro.similarity.phonetic import nysiis, soundex
from repro.similarity.numeric import gaussian_year_similarity, max_abs_diff_similarity
from repro.similarity.geo import GeoPoint, geo_similarity, haversine_km
from repro.similarity.registry import ComparatorRegistry, default_registry

__all__ = [
    "levenshtein_distance",
    "damerau_levenshtein_distance",
    "levenshtein_similarity",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "qgrams",
    "bigrams",
    "qgram_similarity",
    "jaccard_similarity",
    "token_jaccard",
    "dice_similarity",
    "soundex",
    "nysiis",
    "monge_elkan_similarity",
    "max_abs_diff_similarity",
    "gaussian_year_similarity",
    "GeoPoint",
    "haversine_km",
    "geo_similarity",
    "ComparatorRegistry",
    "default_registry",
]
