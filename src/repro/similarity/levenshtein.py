"""Edit-distance comparators.

``levenshtein_distance`` is the classic dynamic-programming algorithm with
two-row memory; ``damerau_levenshtein_distance`` additionally counts
adjacent transpositions, which matter for transcription errors in
historical records ("jonh" vs "john").
"""

from __future__ import annotations

__all__ = [
    "levenshtein_distance",
    "damerau_levenshtein_distance",
    "levenshtein_similarity",
]


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of insert/delete/substitute edits turning ``a`` into ``b``.

    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) > len(b):
        a, b = b, a
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(
                    previous[i] + 1,      # deletion
                    current[i - 1] + 1,   # insertion
                    previous[i - 1] + cost,  # substitution
                )
            )
        previous = current
    return previous[-1]


def damerau_levenshtein_distance(a: str, b: str) -> int:
    """Edit distance counting adjacent transpositions as one edit.

    This is the restricted (optimal string alignment) variant: a substring
    may not be edited after being transposed.

    >>> damerau_levenshtein_distance("ca", "ac")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    rows = len(a) + 1
    cols = len(b) + 1
    dist = [[0] * cols for _ in range(rows)]
    for i in range(rows):
        dist[i][0] = i
    for j in range(cols):
        dist[0][j] = j
    for i in range(1, rows):
        for j in range(1, cols):
            cost = 0 if a[i - 1] == b[j - 1] else 1
            dist[i][j] = min(
                dist[i - 1][j] + 1,
                dist[i][j - 1] + 1,
                dist[i - 1][j - 1] + cost,
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                dist[i][j] = min(dist[i][j], dist[i - 2][j - 2] + 1)
    return dist[-1][-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """Edit distance normalised to [0, 1]: ``1 - dist / max(len)``.

    Both strings empty compares as identical (1.0).

    >>> levenshtein_similarity("smith", "smith")
    1.0
    """
    if a == b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest
