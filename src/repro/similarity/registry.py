"""Per-attribute comparator registry.

Maps QID attribute names to the comparison function appropriate for their
content, following the paper's choices: Jaro-Winkler for names, Jaccard for
other textual strings, max-absolute-difference for years.  The resolver,
all four baselines, and the query engine share one registry so that every
system compares values identically (only the *decision model* differs,
which is what the evaluation isolates).
"""

from __future__ import annotations

from typing import Callable

from repro.similarity.jaccard import token_jaccard
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.numeric import max_abs_diff_similarity

__all__ = [
    "ComparatorRegistry",
    "default_registry",
    "name_similarity",
    "registry_for_config",
]

Comparator = Callable[[str, str], float]


def name_similarity(a: str, b: str) -> float:
    """Variant-aware personal-name similarity.

    Jaro-Winkler on the raw strings, boosted by Jaro-Winkler on the
    standardised forms (documented variants map to one canonical name —
    "effie" and "euphemia" are the same person-name in Scottish
    registers).  The canonical comparison is discounted by 5% so exact
    raw agreement always scores strictly highest.
    """
    from repro.data.normalize import canonical_name_phrase

    raw = jaro_winkler_similarity(a, b)
    if raw == 1.0:
        return raw
    canonical = jaro_winkler_similarity(
        canonical_name_phrase(a), canonical_name_phrase(b)
    )
    return max(raw, 0.95 * canonical)


class ComparatorRegistry:
    """Dispatch table from attribute name to a [0, 1] comparator.

    Unregistered attributes fall back to ``default``, which keeps the
    registry usable on datasets with extra columns.
    """

    def __init__(self, default: Comparator = jaro_winkler_similarity) -> None:
        self._comparators: dict[str, Comparator] = {}
        self._default = default

    def register(self, attribute: str, comparator: Comparator) -> None:
        """Set the comparator used for ``attribute``."""
        self._comparators[attribute] = comparator

    def comparator(self, attribute: str) -> Comparator:
        """Return the comparator for ``attribute`` (or the default)."""
        return self._comparators.get(attribute, self._default)

    def compare(self, attribute: str, a: str | None, b: str | None) -> float | None:
        """Compare two values of ``attribute``.

        Returns ``None`` when either value is missing — missing values
        carry no evidence in either direction (paper Section 2), so they
        are excluded from similarity averages rather than scored as 0.
        """
        if a is None or b is None or a == "" or b == "":
            return None
        return self.comparator(attribute)(a, b)


def _year_comparator(max_diff: float = 3.0) -> Comparator:
    def compare(a: str, b: str) -> float:
        try:
            return max_abs_diff_similarity(float(a), float(b), max_diff=max_diff)
        except (TypeError, ValueError):
            return 0.0

    return compare


def _exact_comparator(a: str, b: str) -> float:
    return 1.0 if a == b else 0.0


def default_registry() -> ComparatorRegistry:
    """Registry matching the paper's per-attribute comparator choices."""
    registry = ComparatorRegistry()
    registry.register("first_name", name_similarity)
    registry.register("surname", name_similarity)
    registry.register("maiden_surname", name_similarity)
    registry.register("spouse_first_name", name_similarity)
    registry.register("gender", _exact_comparator)
    registry.register("address", token_jaccard)
    registry.register("parish", jaro_winkler_similarity)
    registry.register("occupation", token_jaccard)
    registry.register("birth_year", _year_comparator(max_diff=3.0))
    registry.register("event_year", _year_comparator(max_diff=3.0))
    return registry


def registry_for_config(config) -> ComparatorRegistry:
    """The registry a :class:`SnapsConfig`-like object implies.

    The default registry, with the geocode-aware address comparator
    swapped in when ``config.use_geocoded_addresses`` is set.  Both the
    resolver and the parallel worker processes build their registries
    through this helper, so a worker reconstructs *exactly* the
    comparators the main process would use (comparator closures are not
    picklable, hence reconstruction rather than shipping).
    """
    registry = default_registry()
    if getattr(config, "use_geocoded_addresses", False):
        from repro.geocode import geo_address_comparator

        registry.register("address", geo_address_comparator())
    return registry
