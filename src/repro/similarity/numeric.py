"""Numeric comparators for year and age attributes.

The paper uses the maximum-absolute-difference comparator for numerical
QIDs: similarity decays linearly from 1 at equality to 0 at a configured
maximum difference.  A Gaussian variant is provided for softer decay in
query scoring.
"""

from __future__ import annotations

import math

__all__ = ["max_abs_diff_similarity", "gaussian_year_similarity"]


def max_abs_diff_similarity(a: float, b: float, max_diff: float) -> float:
    """Linear similarity: 1 at ``a == b``, 0 at ``|a - b| >= max_diff``.

    >>> max_abs_diff_similarity(1880, 1882, max_diff=4)
    0.5
    """
    if max_diff <= 0:
        raise ValueError(f"max_diff must be positive, got {max_diff}")
    diff = abs(a - b)
    if diff >= max_diff:
        return 0.0
    return 1.0 - diff / max_diff


def gaussian_year_similarity(a: float, b: float, sigma: float = 2.0) -> float:
    """Gaussian-kernel similarity ``exp(-(a-b)^2 / (2 sigma^2))`` in (0, 1].

    Softer than the linear comparator: small year differences (common when
    users guess a birth year) are penalised gently, large ones sharply.

    >>> gaussian_year_similarity(1880, 1880)
    1.0
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    diff = a - b
    return math.exp(-(diff * diff) / (2.0 * sigma * sigma))
