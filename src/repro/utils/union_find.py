"""Disjoint-set (union-find) with path compression and union by size.

The entity store (a record cluster is an entity) and the transitive-closure
step of the Attr-Sim baseline are both built on this structure.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

__all__ = ["UnionFind"]

K = TypeVar("K", bound=Hashable)


class UnionFind(Generic[K]):
    """Disjoint sets over hashable keys, created lazily on first use.

    >>> uf = UnionFind()
    >>> uf.union("a", "b")
    True
    >>> uf.connected("a", "b")
    True
    >>> uf.connected("a", "c")
    False
    """

    def __init__(self, keys: Iterable[K] = ()) -> None:
        self._parent: dict[K, K] = {}
        self._size: dict[K, int] = {}
        for key in keys:
            self.add(key)

    def add(self, key: K) -> None:
        """Register ``key`` as a singleton set if unseen."""
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1

    def find(self, key: K) -> K:
        """Return the representative of ``key``'s set (adds ``key`` if new)."""
        self.add(key)
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: K, b: K) -> bool:
        """Merge the sets of ``a`` and ``b``; return True if they were separate."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: K, b: K) -> bool:
        """True if ``a`` and ``b`` are currently in the same set."""
        return self.find(a) == self.find(b)

    def size(self, key: K) -> int:
        """Number of members in ``key``'s set."""
        return self._size[self.find(key)]

    def groups(self) -> dict[K, list[K]]:
        """Map each representative to the members of its set."""
        out: dict[K, list[K]] = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        return out

    def __contains__(self, key: K) -> bool:
        return key in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[K]:
        return iter(self._parent)
