"""Deterministic random number generator helpers.

All stochastic components of the library (the population simulator, the
corruption model, MinHash, the supervised baselines) take an explicit
``random.Random`` or derive one from a seed through these helpers.  Nothing
in the library touches the global ``random`` state, so experiments are
reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import random

__all__ = ["make_rng", "spawn_rng"]


def make_rng(seed: int | random.Random | None) -> random.Random:
    """Return a ``random.Random`` for ``seed``.

    Accepts an ``int`` seed, an existing ``Random`` (returned unchanged so
    callers can thread one generator through a pipeline), or ``None`` for a
    fixed default seed.  The default is fixed rather than entropy-based so
    that "I forgot to pass a seed" still yields reproducible runs.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = 0
    return random.Random(seed)


def spawn_rng(rng: random.Random, stream: str) -> random.Random:
    """Derive an independent child generator from ``rng`` for ``stream``.

    Used to decorrelate subsystems (e.g. the name sampler and the typo
    injector) so adding draws to one does not shift the other's sequence.
    The child is seeded from the parent's stream combined with a stable
    hash of the stream label.
    """
    # random.Random accepts arbitrarily large ints as seeds.
    label_seed = sum((i + 1) * ord(c) for i, c in enumerate(stream))
    return random.Random(rng.getrandbits(64) ^ (label_seed * 2654435761))
