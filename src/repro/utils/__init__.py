"""Shared utilities: deterministic RNG plumbing, timers, heaps, union-find.

These are small, dependency-free building blocks used across the whole
library.  Everything here is deliberately simple and heavily tested, since
the ER pipeline's correctness rests on them.
"""

from repro.utils.rng import make_rng, spawn_rng
from repro.utils.timer import Stopwatch, Timer
from repro.utils.heaps import TopK, UpdatablePriorityQueue
from repro.utils.union_find import UnionFind

__all__ = [
    "make_rng",
    "spawn_rng",
    "Stopwatch",
    "Timer",
    "TopK",
    "UpdatablePriorityQueue",
    "UnionFind",
]
