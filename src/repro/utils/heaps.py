"""Heap-based containers: bounded top-k selection and an updatable
priority queue.

``TopK`` backs query ranking (Section 7): the accumulator may hold tens of
thousands of scored entities but the interface shows only the best ``m``.

``UpdatablePriorityQueue`` backs the iterative merging step (Section 4.2.6):
node groups are processed by priority and their priorities change as other
groups merge, which requires decrease/increase-key support.  It uses the
standard lazy-invalidation technique over ``heapq``.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Generic, Hashable, Iterator, TypeVar

__all__ = ["TopK", "UpdatablePriorityQueue"]

T = TypeVar("T")
K = TypeVar("K", bound=Hashable)


class TopK(Generic[T]):
    """Keep the ``k`` items with the highest scores seen so far.

    Ties are broken by insertion order (earlier item wins), which makes
    ranked query output deterministic.

    >>> top = TopK(2)
    >>> for score, item in [(0.5, "a"), (0.9, "b"), (0.7, "c")]:
    ...     top.push(score, item)
    >>> [item for _, item in top.items()]
    ['b', 'c']
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[tuple[float, int, T]] = []
        self._counter = itertools.count()

    def push(self, score: float, item: T) -> None:
        """Offer ``item`` with ``score``; keep it only if in the top k."""
        # Negated counter => among equal scores, the earliest item is the
        # largest entry and survives eviction.
        entry = (score, -next(self._counter), item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def items(self) -> list[tuple[float, T]]:
        """Return ``(score, item)`` pairs, best first."""
        ordered = sorted(self._heap, reverse=True)
        return [(score, item) for score, _, item in ordered]

    def __len__(self) -> int:
        return len(self._heap)


class UpdatablePriorityQueue(Generic[K]):
    """Max-priority queue with O(log n) update and removal by key.

    Priorities are arbitrary comparable tuples; the queue pops the largest
    priority first.  Updates are handled by lazy invalidation: superseded
    entries stay in the heap but are skipped on pop.

    >>> q = UpdatablePriorityQueue()
    >>> q.push("a", (1, 0.5))
    >>> q.push("b", (2, 0.1))
    >>> q.push("a", (3, 0.9))   # update
    >>> q.pop()
    ('a', (3, 0.9))
    >>> q.pop()
    ('b', (2, 0.1))
    """

    _REMOVED = object()

    def __init__(self) -> None:
        self._heap: list[list[Any]] = []
        self._entries: dict[K, list[Any]] = {}
        self._counter = itertools.count()

    def push(self, key: K, priority: Any) -> None:
        """Insert ``key`` or update its priority."""
        if key in self._entries:
            self._entries[key][2] = self._REMOVED
        entry = [_Neg(priority), next(self._counter), key]
        self._entries[key] = entry
        heapq.heappush(self._heap, entry)

    def remove(self, key: K) -> None:
        """Remove ``key`` if present (no-op otherwise)."""
        entry = self._entries.pop(key, None)
        if entry is not None:
            entry[2] = self._REMOVED

    def pop(self) -> tuple[K, Any]:
        """Remove and return ``(key, priority)`` with the largest priority.

        Raises ``KeyError`` when empty.
        """
        while self._heap:
            neg, _, key = heapq.heappop(self._heap)
            if key is not self._REMOVED:
                del self._entries[key]
                return key, neg.value
        raise KeyError("pop from empty priority queue")

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def keys(self) -> Iterator[K]:
        return iter(self._entries)


class _Neg:
    """Order-inverting wrapper so heapq's min-heap acts as a max-heap."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Neg) and other.value == self.value
