"""Wall-clock timing helpers used by the benchmark harness.

``Timer`` is a context manager measuring one interval; ``Stopwatch``
accumulates named intervals so the scalability bench (Table 6) can report
per-phase times (graph generation, bootstrap, merging) from a single run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


@dataclass
class Stopwatch:
    """Accumulates elapsed time and call counts under named phases.

    >>> sw = Stopwatch()
    >>> with sw.phase("load"):
    ...     pass
    >>> "load" in sw.times
    True
    >>> sw.counts["load"]
    1
    """

    times: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def phase(self, name: str) -> "_Phase":
        """Return a context manager adding its elapsed time to ``name``."""
        return _Phase(self, name)

    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self.times.values())

    def add(self, name: str, seconds: float) -> None:
        """Add ``seconds`` (one timed call) to phase ``name``."""
        self.times[name] = self.times.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def merge(self, other: "Stopwatch") -> "Stopwatch":
        """Fold ``other``'s phases into this stopwatch (multi-run
        aggregation for the bench harness); returns ``self``."""
        for name, seconds in other.times.items():
            self.times[name] = self.times.get(name, 0.0) + seconds
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count
        return self


class _Phase:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.add(self._name, time.perf_counter() - self._start)
