"""End-to-end dataset anonymisation: names + dates + causes of death.

``anonymise_dataset`` composes the three techniques of Section 9 into a
single pass over a dataset and returns the anonymised copy plus a report
of what was transformed.  Family structure (certificates, roles, ground
truth ids) is preserved exactly — only QID values change — so pedigrees
extracted from the anonymised data are isomorphic to the originals, which
is the property the public SNAPS demo relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.anonymize.causes import CauseOfDeathAnonymiser
from repro.anonymize.dates import DateShifter
from repro.anonymize.names import NameAnonymiser
from repro.data.names import (
    PUBLIC_FEMALE_FIRST_NAMES,
    PUBLIC_MALE_FIRST_NAMES,
    PUBLIC_SURNAMES,
)
from repro.data.records import Dataset, Record
from repro.data.roles import Role

__all__ = ["AnonymisationReport", "anonymise_dataset"]


@dataclass
class AnonymisationReport:
    """What one anonymisation run changed."""

    n_records: int
    n_female_names_mapped: int
    n_male_names_mapped: int
    n_surnames_mapped: int
    n_causes_generalised: int
    n_frequent_causes: int


def _collect_name_universes(dataset: Dataset) -> tuple[list[str], list[str], list[str]]:
    female: set[str] = set()
    male: set[str] = set()
    surnames: set[str] = set()
    for record in dataset:
        first = record.get("first_name")
        surname = record.get("surname")
        if first:
            target = female if record.gender == "f" else male
            for token in first.split():
                target.add(token)
        if surname:
            surnames.add(surname)
    return sorted(female), sorted(male), sorted(surnames)


def anonymise_dataset(
    dataset: Dataset,
    k: int = 10,
    seed: int = 0,
    public_female: list[str] | None = None,
    public_male: list[str] | None = None,
    public_surnames: list[str] | None = None,
) -> tuple[Dataset, AnonymisationReport]:
    """Anonymise ``dataset`` per Section 9; returns (copy, report)."""
    female, male, surnames = _collect_name_universes(dataset)
    female_map = NameAnonymiser.fit(
        female, public_female or PUBLIC_FEMALE_FIRST_NAMES, seed=seed
    )
    male_map = NameAnonymiser.fit(
        male, public_male or PUBLIC_MALE_FIRST_NAMES, seed=seed + 1
    )
    surname_map = NameAnonymiser.fit(
        surnames, public_surnames or PUBLIC_SURNAMES, seed=seed + 2
    )
    shifter = DateShifter(seed=seed + 3)
    cause_anon = CauseOfDeathAnonymiser(k=k)
    cause_anon.fit(
        [
            (
                record.get("cause_of_death") or "",
                record.gender or "m",
                record.age,
            )
            for record in dataset
            if record.role is Role.DD
        ]
    )
    generalised = 0
    new_records: list[Record] = []
    for record in dataset:
        attrs = shifter.shift_attributes(record.attributes)
        first = record.get("first_name")
        if first:
            mapper = female_map if record.gender == "f" else male_map
            attrs["first_name"] = mapper.anonymise(first)
        surname = record.get("surname")
        if surname:
            attrs["surname"] = surname_map.anonymise(surname)
        cause = record.get("cause_of_death")
        if cause and record.role is Role.DD:
            replacement = cause_anon.anonymise(
                cause, record.gender or "m", record.age
            )
            if replacement != cause:
                generalised += 1
            attrs["cause_of_death"] = replacement
        new_records.append(
            Record(
                record_id=record.record_id,
                cert_id=record.cert_id,
                role=record.role,
                attributes=attrs,
                person_id=record.person_id,
            )
        )
    # Certificates carry a year too; shift consistently.
    import dataclasses as _dc

    new_certs = [
        _dc.replace(cert, year=shifter.shift_year(cert.year))
        for cert in dataset.certificates.values()
    ]
    anonymised = Dataset(f"{dataset.name}-anon", new_records, new_certs)
    report = AnonymisationReport(
        n_records=len(new_records),
        n_female_names_mapped=len(female_map.mapping),
        n_male_names_mapped=len(male_map.mapping),
        n_surnames_mapped=len(surname_map.mapping),
        n_causes_generalised=generalised,
        n_frequent_causes=cause_anon.n_frequent,
    )
    return anonymised, report
