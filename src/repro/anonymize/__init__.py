"""Graph data anonymisation (paper Section 9).

Renders a sensitive certificate dataset publishable while preserving the
properties the application depends on:

* **cluster-based name mapping** — female first names, male first names,
  and surnames are clustered by string similarity separately in the
  sensitive and a *public* name universe; each sensitive cluster maps to
  the public cluster with the most similar intra-cluster similarity
  profile, and each sensitive name to a public replacement, consistently
  across the whole dataset — so similarity structure between names (and
  hence blocking/query behaviour) survives;
* **global date offset** — all years shift by one secret offset,
  preserving every temporal distance;
* **k-anonymous causes of death** — causes occurring fewer than ``k``
  times are replaced by their most similar frequent cause, stratified by
  gender and age band so no one dies of an implausible cause.
"""

from repro.anonymize.names import NameAnonymiser, cluster_names
from repro.anonymize.dates import DateShifter
from repro.anonymize.causes import CauseOfDeathAnonymiser
from repro.anonymize.graph_anon import AnonymisationReport, anonymise_dataset

__all__ = [
    "NameAnonymiser",
    "cluster_names",
    "DateShifter",
    "CauseOfDeathAnonymiser",
    "AnonymisationReport",
    "anonymise_dataset",
]
