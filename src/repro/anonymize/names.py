"""Cluster-based name mapping against a public name universe.

Following Nanayakkara, Christen & Ranbaduge (CIKM EYRE 2020), as used in
the paper: names are clustered so that similar names share a cluster;
sensitive clusters are matched to public clusters by comparing
intra-cluster similarity profiles; and each sensitive name receives a
unique public replacement from its mapped cluster.  Two names that were
similar before anonymisation map to names that are similar after it —
the property the SNAPS web demo needs so approximate search still behaves
realistically on the anonymised data.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.phonetic import soundex
from repro.utils.rng import make_rng

__all__ = ["cluster_names", "NameAnonymiser"]


def cluster_names(names: list[str], threshold: float = 0.8) -> list[list[str]]:
    """Greedy similarity clustering of a name list.

    Names are bucketed by Soundex first (cheap recall), then each bucket
    is split greedily: a name joins the first cluster whose seed it
    matches with Jaro-Winkler ≥ ``threshold``, else starts a new cluster.
    Deterministic for a given input order; callers sort beforehand.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    by_code: dict[str, list[str]] = {}
    for name in sorted(set(names)):
        by_code.setdefault(soundex(name), []).append(name)
    clusters: list[list[str]] = []
    for code in sorted(by_code):
        for name in by_code[code]:
            for cluster in clusters:
                if soundex(cluster[0]) != code:
                    continue
                if jaro_winkler_similarity(name, cluster[0]) >= threshold:
                    cluster.append(name)
                    break
            else:
                clusters.append([name])
    return clusters


def _profile(cluster: list[str]) -> tuple[float, float]:
    """(size-normalised length, mean intra-cluster similarity)."""
    mean_length = sum(len(n) for n in cluster) / len(cluster)
    if len(cluster) == 1:
        return (mean_length, 1.0)
    sims = []
    for i, a in enumerate(cluster):
        for b in cluster[i + 1 :]:
            sims.append(jaro_winkler_similarity(a, b))
    return (mean_length, sum(sims) / len(sims))


@dataclass
class NameAnonymiser:
    """Maps one universe of sensitive names onto public replacements."""

    mapping: dict[str, str]

    @classmethod
    def fit(
        cls,
        sensitive_names: list[str],
        public_names: list[str],
        threshold: float = 0.8,
        seed: int = 0,
    ) -> "NameAnonymiser":
        """Build the sensitive→public mapping via cluster matching.

        Every sensitive name gets a replacement; public names are reused
        across clusters only when the public universe is smaller than the
        sensitive one (with a numeric suffix to stay injective).
        """
        rng = make_rng(seed)
        sensitive_clusters = cluster_names(sensitive_names, threshold)
        public_clusters = cluster_names(public_names, threshold)
        if not public_clusters:
            raise ValueError("public name universe is empty")
        # Match clusters by similarity of (mean length, intra-similarity)
        # profiles; larger sensitive clusters pick first.
        public_profiles = [_profile(c) for c in public_clusters]
        available = list(range(len(public_clusters)))
        mapping: dict[str, str] = {}
        used_public: set[str] = set()
        order = sorted(
            range(len(sensitive_clusters)),
            key=lambda i: -len(sensitive_clusters[i]),
        )
        for index in order:
            cluster = sensitive_clusters[index]
            length, intra = _profile(cluster)
            best = min(
                available if available else range(len(public_clusters)),
                key=lambda j: (
                    abs(public_profiles[j][0] - length)
                    + 2.0 * abs(public_profiles[j][1] - intra)
                    # Prefer public clusters big enough for this one.
                    + (0.5 if len(public_clusters[j]) < len(cluster) else 0.0)
                ),
            )
            if best in available:
                available.remove(best)
            replacements = list(public_clusters[best])
            rng.shuffle(replacements)
            for position, name in enumerate(sorted(cluster)):
                if position < len(replacements):
                    candidate = replacements[position]
                else:
                    candidate = f"{replacements[position % len(replacements)]}{position}"
                while candidate in used_public:
                    candidate = f"{candidate}x"
                used_public.add(candidate)
                mapping[name] = candidate
        return cls(mapping=mapping)

    def anonymise(self, name: str) -> str:
        """Replacement for ``name`` (token-wise for compound names).

        Unknown tokens map deterministically to a hash-derived existing
        replacement so the output universe never leaks a sensitive name.
        """
        tokens = name.split()
        out = []
        for token in tokens:
            mapped = self.mapping.get(token)
            if mapped is None:
                # Deterministic fallback for unseen tokens.
                values = sorted(set(self.mapping.values()))
                import zlib

                mapped = values[zlib.crc32(token.encode()) % len(values)]
            out.append(mapped)
        return " ".join(out)
