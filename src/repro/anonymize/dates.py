"""Global date shifting: hide absolute years, keep temporal distances.

The paper shifts all date values "by a global offset to hide the actual
years of birth and death" — every temporal distance between vital events
is preserved exactly, so temporal constraints and pedigree structure
behave identically on the anonymised data.
"""

from __future__ import annotations

from repro.utils.rng import make_rng

__all__ = ["DateShifter"]


class DateShifter:
    """Applies one secret year offset to every year-valued attribute."""

    #: record attributes holding year values
    YEAR_ATTRIBUTES = ("event_year", "birth_year")

    def __init__(self, offset: int | None = None, seed: int = 0) -> None:
        """``offset=None`` draws a secret offset in ±[5, 25] years."""
        if offset is None:
            rng = make_rng(seed)
            magnitude = rng.randint(5, 25)
            offset = magnitude if rng.random() < 0.5 else -magnitude
        if offset == 0:
            raise ValueError("a zero offset anonymises nothing")
        self._offset = offset

    def shift_year(self, year: int) -> int:
        """The anonymised year."""
        return year + self._offset

    def shift_attributes(self, attributes: dict[str, str]) -> dict[str, str]:
        """Copy of ``attributes`` with all year values shifted."""
        out = dict(attributes)
        for key in self.YEAR_ATTRIBUTES:
            value = out.get(key)
            if value:
                out[key] = str(int(value) + self._offset)
        return out
