"""k-anonymous generalisation of causes of death (paper Section 9).

Causes occurring at least ``k`` times are frequent and kept; every rarer
(potentially identifying) cause is replaced by its most similar frequent
cause using Jaccard similarity over token sets.  Replacement is
stratified by gender and by the paper's age bands (*young* < 20,
*middle* 20–40, *old* ≥ 40) so men do not die of ovarian cancer nor
infants of old age; when no frequent similar cause exists within the
stratum the cause becomes ``"not known"``.
"""

from __future__ import annotations

from repro.similarity.jaccard import token_jaccard

__all__ = ["CauseOfDeathAnonymiser", "age_band"]

NOT_KNOWN = "not known"


def age_band(age: int | None) -> str:
    """The paper's age stratification: young / middle / old."""
    if age is None:
        return "old"  # the safest default stratum for historical data
    if age < 0:
        raise ValueError(f"age cannot be negative: {age}")
    if age < 20:
        return "young"
    if age < 40:
        return "middle"
    return "old"


class CauseOfDeathAnonymiser:
    """Replaces rare causes of death with frequent similar ones."""

    def __init__(self, k: int = 10, min_similarity: float = 0.05) -> None:
        if k < 2:
            raise ValueError(f"k must be at least 2, got {k}")
        self.k = k
        self.min_similarity = min_similarity
        # (gender, band) -> frequent causes in that stratum
        self._frequent: dict[tuple[str, str], list[str]] = {}
        self._fitted = False

    def fit(self, observations: list[tuple[str, str, int | None]]) -> "CauseOfDeathAnonymiser":
        """Learn the frequent causes from (cause, gender, age) tuples."""
        counts: dict[str, int] = {}
        strata: dict[tuple[str, str], set[str]] = {}
        for cause, gender, age in observations:
            cause = cause.strip().lower()
            if not cause:
                continue
            counts[cause] = counts.get(cause, 0) + 1
            strata.setdefault((gender, age_band(age)), set()).add(cause)
        frequent = {cause for cause, count in counts.items() if count >= self.k}
        self._frequent = {
            stratum: sorted(c for c in causes if c in frequent)
            for stratum, causes in strata.items()
        }
        self._fitted = True
        return self

    @property
    def n_frequent(self) -> int:
        """Distinct frequent causes across all strata."""
        return len({c for causes in self._frequent.values() for c in causes})

    def anonymise(self, cause: str, gender: str, age: int | None) -> str:
        """The publishable cause for one death record."""
        if not self._fitted:
            raise RuntimeError("anonymiser is not fitted")
        cause = cause.strip().lower()
        if not cause:
            return NOT_KNOWN
        stratum = (gender, age_band(age))
        frequent = self._frequent.get(stratum, [])
        if cause in frequent:
            return cause
        best: str | None = None
        best_sim = self.min_similarity
        for candidate in frequent:
            similarity = token_jaccard(cause, candidate)
            if similarity > best_sim:
                best, best_sim = candidate, similarity
        return best if best is not None else NOT_KNOWN
