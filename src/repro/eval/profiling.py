"""Dataset profiling: missing-value counts and QID frequency statistics.

Backs the Table 1 reproduction (missing values; min/avg/max value
frequencies of deceased people's QIDs) and the Figure 2 reproduction
(rank-frequency series of the 100 most common names/addresses).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.data.records import Dataset, Record
from repro.data.roles import Role

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["AttributeProfile", "attribute_profile", "rank_frequency_series"]


@dataclass(frozen=True)
class AttributeProfile:
    """Missing-value count and frequency stats of one QID attribute."""

    attribute: str
    n_records: int
    missing: int
    min_freq: int
    avg_freq: float
    max_freq: int

    def row(self) -> dict[str, float | str]:
        return {
            "attribute": self.attribute,
            "missing": self.missing,
            "min": self.min_freq,
            "avg": round(self.avg_freq, 1),
            "max": self.max_freq,
        }


def _value_counts(
    records: Iterable[Record], attribute: str
) -> tuple[Counter[str], int]:
    counts: Counter[str] = Counter()
    missing = 0
    for record in records:
        value = record.get(attribute)
        if value is None:
            missing += 1
        else:
            counts[value] += 1
    return counts, missing


def attribute_profile(
    dataset: Dataset,
    attribute: str,
    roles: Iterable[Role] = (Role.DD,),
    metrics: "MetricsRegistry | None" = None,
) -> AttributeProfile:
    """Profile ``attribute`` over records in ``roles`` (default: deceased
    persons, matching Table 1's population).

    ``metrics``, when given, receives the profiling totals
    (``profile.<attribute>.missing`` / ``.values`` / ``.distinct``) so
    Table 1 profiling and the telemetry layer share one counting path.
    """
    records = dataset.records_with_role(roles)
    counts, missing = _value_counts(records, attribute)
    if metrics is not None:
        metrics.inc(f"profile.{attribute}.missing", missing)
        metrics.inc(f"profile.{attribute}.values", sum(counts.values()))
        metrics.inc(f"profile.{attribute}.distinct", len(counts))
    if counts:
        freqs = list(counts.values())
        min_freq, max_freq = min(freqs), max(freqs)
        avg_freq = sum(freqs) / len(freqs)
    else:
        min_freq = max_freq = 0
        avg_freq = 0.0
    return AttributeProfile(
        attribute=attribute,
        n_records=len(records),
        missing=missing,
        min_freq=min_freq,
        avg_freq=avg_freq,
        max_freq=max_freq,
    )


def rank_frequency_series(
    dataset: Dataset,
    attribute: str,
    roles: Iterable[Role] = (Role.DD,),
    top_k: int = 100,
) -> list[tuple[str, int]]:
    """The ``top_k`` most frequent values of ``attribute`` with counts,
    most frequent first — the series plotted in Figure 2."""
    records = dataset.records_with_role(roles)
    counts, _ = _value_counts(records, attribute)
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[:top_k]
