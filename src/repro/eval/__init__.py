"""Evaluation: linkage-quality metrics and dataset profiling.

Metrics follow the paper's Section 10: precision, recall, and the
F*-measure (Hand, Christen & Kirielle 2021) — the paper explicitly avoids
the F-measure because its implicit weighting of precision vs recall
depends on the number of classified matches.
"""

from repro.eval.metrics import (
    ConfusionCounts,
    LinkageEvaluation,
    confusion_counts,
    evaluate_linkage,
    f_measure,
    f_star,
    precision,
    recall,
)
from repro.eval.profiling import (
    attribute_profile,
    rank_frequency_series,
    AttributeProfile,
)
from repro.eval.cluster_metrics import (
    BCubedScores,
    b_cubed,
    cluster_purity,
    clustering_from_entities,
    variation_of_information,
)

__all__ = [
    "BCubedScores",
    "b_cubed",
    "cluster_purity",
    "clustering_from_entities",
    "variation_of_information",
    "ConfusionCounts",
    "LinkageEvaluation",
    "confusion_counts",
    "evaluate_linkage",
    "precision",
    "recall",
    "f_star",
    "f_measure",
    "attribute_profile",
    "rank_frequency_series",
    "AttributeProfile",
]
