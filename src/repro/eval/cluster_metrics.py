"""Cluster-level linkage evaluation: B-cubed, purity, variation of
information.

The paper evaluates pairwise (P/R/F*), which can be dominated by large
clusters; cluster-level measures weight every *record* equally and are
standard complements in the ER literature (Hassanzadeh et al., VLDB
2009).  All functions take a predicted clustering and the ground truth
as mappings ``record_id -> cluster_id`` / ``record_id -> person_id``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "BCubedScores",
    "b_cubed",
    "cluster_purity",
    "variation_of_information",
    "clustering_from_entities",
]


@dataclass(frozen=True)
class BCubedScores:
    """B-cubed precision, recall, and their harmonic mean."""

    precision: float
    recall: float
    f1: float


def _validate(predicted: dict[int, int], truth: dict[int, int]) -> None:
    if set(predicted) != set(truth):
        missing = set(truth) ^ set(predicted)
        raise ValueError(
            f"predicted and truth must cover the same records; "
            f"{len(missing)} records differ"
        )
    if not predicted:
        raise ValueError("cannot evaluate an empty clustering")


def _groups(assignment: dict[int, int]) -> dict[int, set[int]]:
    out: dict[int, set[int]] = {}
    for record, cluster in assignment.items():
        out.setdefault(cluster, set()).add(record)
    return out


def b_cubed(predicted: dict[int, int], truth: dict[int, int]) -> BCubedScores:
    """B-cubed scores of ``predicted`` against ``truth``.

    Per record: precision is the fraction of its predicted cluster that
    truly co-refers with it; recall is the fraction of its true cluster
    it was clustered with.  Scores average over records.
    """
    _validate(predicted, truth)
    predicted_groups = _groups(predicted)
    truth_groups = _groups(truth)
    precision_sum = 0.0
    recall_sum = 0.0
    for record in predicted:
        cluster = predicted_groups[predicted[record]]
        true_cluster = truth_groups[truth[record]]
        overlap = len(cluster & true_cluster)
        precision_sum += overlap / len(cluster)
        recall_sum += overlap / len(true_cluster)
    n = len(predicted)
    precision = precision_sum / n
    recall = recall_sum / n
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return BCubedScores(precision=precision, recall=recall, f1=f1)


def cluster_purity(predicted: dict[int, int], truth: dict[int, int]) -> float:
    """Fraction of records whose predicted cluster's majority person is
    their own — 1.0 when every cluster is single-person."""
    _validate(predicted, truth)
    total = 0
    for cluster in _groups(predicted).values():
        counts: dict[int, int] = {}
        for record in cluster:
            person = truth[record]
            counts[person] = counts.get(person, 0) + 1
        total += max(counts.values())
    return total / len(predicted)


def variation_of_information(
    predicted: dict[int, int], truth: dict[int, int]
) -> float:
    """VI distance between the two clusterings (0 = identical; lower is
    better).  VI = H(P) + H(T) − 2·I(P; T), in nats."""
    _validate(predicted, truth)
    n = len(predicted)
    predicted_groups = _groups(predicted)
    truth_groups = _groups(truth)

    def entropy(groups: dict[int, set[int]]) -> float:
        return -sum(
            (len(g) / n) * math.log(len(g) / n) for g in groups.values()
        )

    mutual = 0.0
    for p_cluster in predicted_groups.values():
        for t_cluster in truth_groups.values():
            overlap = len(p_cluster & t_cluster)
            if overlap:
                p_xy = overlap / n
                mutual += p_xy * math.log(
                    p_xy / ((len(p_cluster) / n) * (len(t_cluster) / n))
                )
    return max(0.0, entropy(predicted_groups) + entropy(truth_groups) - 2.0 * mutual)


def clustering_from_entities(store) -> dict[int, int]:
    """record_id → entity_id mapping from an EntityStore, for these
    metrics."""
    assignment: dict[int, int] = {}
    for entity in store.entities():
        for record_id in entity.record_ids:
            assignment[record_id] = entity.entity_id
    return assignment
