"""Pair-level linkage-quality metrics: precision, recall, F*, F-measure.

All metrics operate on sets of unordered record-id pairs:

* ``predicted`` — pairs the linkage classified as matches;
* ``truth`` — ground-truth matching pairs.

TP/FP/FN follow directly; TN is the (astronomically large) rest of the
pair space and none of the reported measures need it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ConfusionCounts",
    "confusion_counts",
    "precision",
    "recall",
    "f_star",
    "f_measure",
    "LinkageEvaluation",
    "evaluate_linkage",
]

Pair = tuple[int, int]


@dataclass(frozen=True)
class ConfusionCounts:
    """True positives, false positives, false negatives of a linkage."""

    tp: int
    fp: int
    fn: int


def confusion_counts(predicted: set[Pair], truth: set[Pair]) -> ConfusionCounts:
    """Count TP/FP/FN between predicted and true match-pair sets."""
    tp = len(predicted & truth)
    return ConfusionCounts(tp=tp, fp=len(predicted) - tp, fn=len(truth) - tp)


def precision(counts: ConfusionCounts) -> float:
    """TP / (TP + FP); defined as 1.0 when nothing was predicted."""
    denom = counts.tp + counts.fp
    return counts.tp / denom if denom else 1.0


def recall(counts: ConfusionCounts) -> float:
    """TP / (TP + FN); defined as 1.0 when there are no true matches."""
    denom = counts.tp + counts.fn
    return counts.tp / denom if denom else 1.0


def f_star(counts: ConfusionCounts) -> float:
    """F* = TP / (TP + FP + FN) (Hand, Christen & Kirielle 2021).

    A monotone transformation of the F-measure with a direct
    interpretation: the fraction of relevant-or-retrieved pairs that are
    both.  This is the paper's headline quality measure.
    """
    denom = counts.tp + counts.fp + counts.fn
    return counts.tp / denom if denom else 1.0


def f_measure(counts: ConfusionCounts) -> float:
    """Classic F1 (reported for completeness; the paper prefers F*)."""
    p, r = precision(counts), recall(counts)
    return 2 * p * r / (p + r) if (p + r) else 0.0


@dataclass(frozen=True)
class LinkageEvaluation:
    """Precision/recall/F* of one linkage on one role pair (percentages)."""

    role_pair: str
    counts: ConfusionCounts
    precision: float
    recall: float
    f_star: float

    def row(self) -> dict[str, float | str]:
        """Flat dict for table printing."""
        return {
            "role_pair": self.role_pair,
            "P": round(self.precision, 2),
            "R": round(self.recall, 2),
            "F*": round(self.f_star, 2),
            "TP": self.counts.tp,
            "FP": self.counts.fp,
            "FN": self.counts.fn,
        }


def evaluate_linkage(
    predicted: set[Pair], truth: set[Pair], role_pair: str = ""
) -> LinkageEvaluation:
    """Evaluate predicted pairs against truth; percentages like the paper."""
    counts = confusion_counts(predicted, truth)
    return LinkageEvaluation(
        role_pair=role_pair,
        counts=counts,
        precision=100.0 * precision(counts),
        recall=100.0 * recall(counts),
        f_star=100.0 * f_star(counts),
    )
