"""CART decision tree (Gini impurity, axis-aligned splits)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import _validate_xy

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """Internal or leaf node of the fitted tree."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


class DecisionTree:
    """Greedy CART with depth / leaf-size stopping.

    ``max_features`` (if set) samples a feature subset per split, which
    is what the random forest uses for decorrelation.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 5,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth <= 0 or min_samples_leaf <= 0:
            raise ValueError("invalid hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = np.random.default_rng(seed)
        self.root_: _Node | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X, y = _validate_xy(X, y)
        self.root_ = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        prediction = float(y.mean())
        node = _Node(prediction=prediction)
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or prediction in (0.0, 1.0)
        ):
            return node
        split = self._best_split(X, y)
        if split is None:
            return node
        feature, threshold = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int, float] | None:
        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self._rng.choice(d, size=self.max_features, replace=False)
        best: tuple[float, int, float] | None = None
        parent_counts = np.array([np.sum(y == 0), np.sum(y == 1)], dtype=float)
        parent_gini = _gini(parent_counts)
        for feature in features:
            order = np.argsort(X[:, feature], kind="stable")
            xs, ys = X[order, feature], y[order]
            left_counts = np.zeros(2)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                label = int(ys[i])
                left_counts[label] += 1
                right_counts[label] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                impurity = (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                gain = parent_gini - impurity
                if gain > 1e-9 and (best is None or gain > best[0]):
                    best = (gain, int(feature), float((xs[i] + xs[i + 1]) / 2.0))
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(match) per row (leaf class frequency)."""
        if self.root_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right  # type: ignore[assignment]
            out[i] = node.prediction
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)
