"""Random forest: bagged decision trees with per-split feature sampling."""

from __future__ import annotations

import math

import numpy as np

from repro.ml.base import _validate_xy
from repro.ml.tree import DecisionTree

__all__ = ["RandomForest"]


class RandomForest:
    """Majority-vote ensemble of CART trees on bootstrap samples."""

    def __init__(
        self,
        n_trees: int = 15,
        max_depth: int = 10,
        min_samples_leaf: int = 3,
        seed: int = 0,
    ) -> None:
        if n_trees <= 0:
            raise ValueError(f"n_trees must be positive, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.trees_: list[DecisionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X, y = _validate_xy(X, y)
        n, d = X.shape
        rng = np.random.default_rng(self.seed)
        max_features = max(1, int(math.sqrt(d)))
        self.trees_ = []
        for t in range(self.n_trees):
            sample = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=self.seed * 1000 + t,
            )
            tree.fit(X[sample], y[sample])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Mean of member-tree probabilities."""
        if not self.trees_:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        return np.mean([tree.predict_proba(X) for tree in self.trees_], axis=0)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(int)
