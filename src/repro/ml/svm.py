"""Linear SVM trained with the Pegasos stochastic sub-gradient method."""

from __future__ import annotations

import numpy as np

from repro.ml.base import _validate_xy

__all__ = ["LinearSVM"]


class LinearSVM:
    """Hinge-loss linear classifier (primal Pegasos).

    Labels are converted to ±1 internally; ``lambda_reg`` is the usual
    Pegasos regularisation strength (smaller = wider margins allowed).
    """

    def __init__(
        self,
        lambda_reg: float = 1e-3,
        n_epochs: int = 20,
        seed: int = 0,
    ) -> None:
        if lambda_reg <= 0 or n_epochs <= 0:
            raise ValueError("invalid hyper-parameters")
        self.lambda_reg = lambda_reg
        self.n_epochs = n_epochs
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X, y = _validate_xy(X, y)
        n, d = X.shape
        signs = np.where(y > 0.5, 1.0, -1.0)
        rng = np.random.default_rng(self.seed)
        weights = np.zeros(d)
        bias = 0.0
        step = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n):
                step += 1
                eta = 1.0 / (self.lambda_reg * step)
                margin = signs[i] * (X[i] @ weights + bias)
                weights *= 1.0 - eta * self.lambda_reg
                if margin < 1.0:
                    weights += eta * signs[i] * X[i]
                    bias += eta * signs[i]
        self.weights_ = weights
        self.bias_ = bias
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed margins (positive = match side)."""
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        return X @ self.weights_ + self.bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
