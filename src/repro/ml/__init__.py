"""From-scratch classifiers for the supervised ("Magellan-style") baseline.

The paper's Table 4 baseline averages a SVM, a random forest, a logistic
regression, and a decision tree from the Magellan entity-matching system.
Magellan itself is not redistributable here, so this package implements
the same four classifier families on numpy — enough to reproduce the
qualitative result: good quality when trained on the evaluated role pair,
poor when trained across role pairs, and a large variance between the
regimes.
"""

from repro.ml.base import Classifier, StandardScaler, train_test_split
from repro.ml.logistic import LogisticRegression
from repro.ml.tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.svm import LinearSVM

__all__ = [
    "Classifier",
    "StandardScaler",
    "train_test_split",
    "LogisticRegression",
    "DecisionTree",
    "RandomForest",
    "LinearSVM",
]
