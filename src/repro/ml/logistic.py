"""Logistic regression via full-batch gradient descent with L2 penalty."""

from __future__ import annotations

import numpy as np

from repro.ml.base import _validate_xy

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Clipping keeps exp() finite for extreme margins.
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class LogisticRegression:
    """Binary logistic regression.

    Plain gradient descent is adequate here: the feature spaces are tiny
    (≈10 similarity features) and datasets are tens of thousands of pairs.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 300,
        l2: float = 1e-4,
        threshold: float = 0.5,
    ) -> None:
        if learning_rate <= 0 or n_iterations <= 0 or l2 < 0:
            raise ValueError("invalid hyper-parameters")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.threshold = threshold
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X, y = _validate_xy(X, y)
        n, d = X.shape
        weights = np.zeros(d)
        bias = 0.0
        for _ in range(self.n_iterations):
            margin = X @ weights + bias
            probs = _sigmoid(margin)
            error = probs - y
            grad_w = X.T @ error / n + self.l2 * weights
            grad_b = float(error.mean())
            weights -= self.learning_rate * grad_w
            bias -= self.learning_rate * grad_b
        self.weights_ = weights
        self.bias_ = bias
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(match) per row."""
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(X, dtype=float)
        return _sigmoid(X @ self.weights_ + self.bias_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= self.threshold).astype(int)
