"""Classifier protocol and small ML utilities (scaling, splitting)."""

from __future__ import annotations

from typing import Protocol

import numpy as np

__all__ = ["Classifier", "StandardScaler", "train_test_split"]


class Classifier(Protocol):
    """Binary classifier over float feature matrices.

    ``fit`` takes ``X`` of shape (n, d) and ``y`` of 0/1 labels;
    ``predict`` returns 0/1 labels for new rows.
    """

    def fit(self, X: np.ndarray, y: np.ndarray) -> "Classifier": ...

    def predict(self, X: np.ndarray) -> np.ndarray: ...


def _validate_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float).ravel()
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError(f"X and y length mismatch: {len(X)} vs {len(y)}")
    if len(X) == 0:
        raise ValueError("cannot fit on empty data")
    if not np.isin(np.unique(y), (0.0, 1.0)).all():
        raise ValueError("labels must be 0/1")
    return X, y


class StandardScaler:
    """Column-wise standardisation to zero mean / unit variance.

    Constant columns are left centred but unscaled (variance floor).
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-12] = 1.0
        self.scale_ = scale
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into (X_train, X_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0,1), got {test_fraction}")
    X, y = _validate_xy(X, y)
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(X))
    cut = int(round(len(X) * (1.0 - test_fraction)))
    if cut == 0 or cut == len(X):
        raise ValueError("split leaves one side empty; need more data")
    train, test = order[:cut], order[cut:]
    return X[train], X[test], y[train], y[test]
