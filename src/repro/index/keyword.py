"""Keyword index K: QID value → entity ids (paper Section 6).

Built once from the pedigree graph in the offline phase.  Name and
location values index under every distinct value an entity carries (a
woman is findable under maiden and married surnames); years index under
every event year of the entity's records so a query year can hit any of
the person's vital events.

The index round-trips through :meth:`KeywordIndex.postings` /
:meth:`KeywordIndex.from_postings`, which is how ``repro.store``
persists it into a snapshot so a serving process can warm-start without
re-scanning the graph.

Thread safety: the index is **immutable after construction** — every
mutation happens in ``__init__`` and all lookups return fresh copies of
the stored sets, never the internals.  Any number of request threads
(see ``repro.serve``) may therefore query one instance concurrently
without locking.
"""

from __future__ import annotations

from repro.faults import fire
from repro.pedigree.graph import PedigreeGraph

__all__ = ["KeywordIndex", "MemmapKeywordIndex"]

# Attributes the query interface exposes (Figure 5): names, gender, year,
# and location (parish/district).
_STRING_ATTRIBUTES = ("first_name", "surname", "parish")


class KeywordIndex:
    """Inverted index from QID values to pedigree-graph entity ids."""

    def __init__(self, graph: PedigreeGraph) -> None:
        fire("index.keyword.build")
        self._by_value: dict[tuple[str, str], set[int]] = {}
        self._years: dict[int, set[int]] = {}
        self._genders: dict[str, set[int]] = {}
        for entity in graph:
            for attribute in _STRING_ATTRIBUTES:
                for value in entity.values.get(attribute, ()):
                    key = (attribute, value.lower())
                    self._by_value.setdefault(key, set()).add(entity.entity_id)
            for year_value in entity.values.get("event_year", ()):
                try:
                    year = int(year_value)
                except ValueError:
                    continue
                self._years.setdefault(year, set()).add(entity.entity_id)
            if entity.gender:
                self._genders.setdefault(entity.gender, set()).add(entity.entity_id)

    # ------------------------------------------------------------------
    # Persistence state (repro.store)
    # ------------------------------------------------------------------

    def postings(
        self,
    ) -> tuple[
        dict[tuple[str, str], list[int]],
        dict[int, list[int]],
        dict[str, list[int]],
    ]:
        """The full index state as sorted posting lists.

        Returns ``(by_value, years, genders)`` — plain dicts of sorted
        entity-id lists, suitable for serialisation.  The internals are
        copied, never exposed.
        """
        return (
            {key: sorted(ids) for key, ids in self._by_value.items()},
            {year: sorted(ids) for year, ids in self._years.items()},
            {gender: sorted(ids) for gender, ids in self._genders.items()},
        )

    @classmethod
    def from_postings(
        cls,
        by_value: dict[tuple[str, str], list[int]],
        years: dict[int, list[int]],
        genders: dict[str, list[int]],
    ) -> "KeywordIndex":
        """Rebuild an index from :meth:`postings` output, skipping the
        graph scan entirely (snapshot warm start)."""
        index = cls.__new__(cls)
        index._by_value = {key: set(ids) for key, ids in by_value.items()}
        index._years = {int(year): set(ids) for year, ids in years.items()}
        index._genders = {gender: set(ids) for gender, ids in genders.items()}
        return index

    # ------------------------------------------------------------------

    def lookup(self, attribute: str, value: str) -> set[int]:
        """Entity ids whose ``attribute`` exactly equals ``value``."""
        return set(self._by_value.get((attribute, value.lower()), ()))

    def lookup_year_range(self, year_from: int, year_to: int) -> set[int]:
        """Entity ids with any event year inside [year_from, year_to]."""
        if year_to < year_from:
            raise ValueError(f"empty year range: {year_from}..{year_to}")
        out: set[int] = set()
        for year in range(year_from, year_to + 1):
            out |= self._years.get(year, set())
        return out

    def lookup_gender(self, gender: str) -> set[int]:
        """Entity ids of the given gender ('m' or 'f')."""
        return set(self._genders.get(gender, ()))

    def values(self, attribute: str) -> list[str]:
        """All distinct indexed values of ``attribute`` (for S-building)."""
        return sorted(
            value for (attr, value) in self._by_value if attr == attribute
        )

    def n_keys(self) -> int:
        """Total number of distinct (attribute, value) keys."""
        return len(self._by_value) + len(self._years) + len(self._genders)


class MemmapKeywordIndex(KeywordIndex):
    """A :class:`KeywordIndex` whose posting lists stay on disk.

    Built by :func:`repro.store.codecs.load_keyword_index_memmap` from the
    raw ``.npy`` snapshot artefacts: the (attribute, value) → row lookup
    tables are small python dicts materialised once, but the posting-id
    arrays — the bulk of the index — remain read-only ``numpy.memmap``
    views.  A pre-fork serving master maps the snapshot once and forks;
    every worker then shares the same physical pages, so per-worker
    incremental RSS is near zero and lookups fault pages in on demand.

    Lookups return plain python ``set[int]`` copies exactly like the
    eager index, so query results are byte-identical either way (proven
    by the memmap parity suite).
    """

    def __init__(
        self,
        kv_keys: list[tuple[str, str]],
        kv_offsets,
        kv_postings,
        year_keys: list[int],
        year_offsets,
        year_postings,
        gender_keys: list[str],
        gender_offsets,
        gender_postings,
    ) -> None:
        # Row-index tables: key -> position into the offset arrays.  The
        # keys are materialised (they are small next to the postings);
        # the int64 posting arrays stay memory-mapped.
        self._kv_rows = {key: i for i, key in enumerate(kv_keys)}
        self._kv_offsets = kv_offsets
        self._kv_postings = kv_postings
        self._year_rows = {int(year): i for i, year in enumerate(year_keys)}
        self._year_offsets = year_offsets
        self._year_postings = year_postings
        self._gender_rows = {gender: i for i, gender in enumerate(gender_keys)}
        self._gender_offsets = gender_offsets
        self._gender_postings = gender_postings

    def _slice(self, offsets, postings, row: int) -> list[int]:
        # .tolist() converts numpy int64 to python int, keeping the
        # public contract (and JSON serialisation) identical to the
        # eager index.
        return postings[int(offsets[row]):int(offsets[row + 1])].tolist()

    def lookup(self, attribute: str, value: str) -> set[int]:
        row = self._kv_rows.get((attribute, value.lower()))
        if row is None:
            return set()
        return set(self._slice(self._kv_offsets, self._kv_postings, row))

    def lookup_year_range(self, year_from: int, year_to: int) -> set[int]:
        if year_to < year_from:
            raise ValueError(f"empty year range: {year_from}..{year_to}")
        out: set[int] = set()
        for year in range(year_from, year_to + 1):
            row = self._year_rows.get(year)
            if row is not None:
                out.update(
                    self._slice(self._year_offsets, self._year_postings, row)
                )
        return out

    def lookup_gender(self, gender: str) -> set[int]:
        row = self._gender_rows.get(gender)
        if row is None:
            return set()
        return set(
            self._slice(self._gender_offsets, self._gender_postings, row)
        )

    def values(self, attribute: str) -> list[str]:
        return sorted(
            value for (attr, value) in self._kv_rows if attr == attribute
        )

    def n_keys(self) -> int:
        return len(self._kv_rows) + len(self._year_rows) + len(self._gender_rows)

    def postings(
        self,
    ) -> tuple[
        dict[tuple[str, str], list[int]],
        dict[int, list[int]],
        dict[str, list[int]],
    ]:
        """Materialise the full state (for re-serialisation parity)."""
        return (
            {
                key: sorted(self._slice(self._kv_offsets, self._kv_postings, row))
                for key, row in self._kv_rows.items()
            },
            {
                year: sorted(
                    self._slice(self._year_offsets, self._year_postings, row)
                )
                for year, row in self._year_rows.items()
            },
            {
                gender: sorted(
                    self._slice(
                        self._gender_offsets, self._gender_postings, row
                    )
                )
                for gender, row in self._gender_rows.items()
            },
        )
