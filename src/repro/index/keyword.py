"""Keyword index K: QID value → entity ids (paper Section 6).

Built once from the pedigree graph in the offline phase.  Name and
location values index under every distinct value an entity carries (a
woman is findable under maiden and married surnames); years index under
every event year of the entity's records so a query year can hit any of
the person's vital events.

The index round-trips through :meth:`KeywordIndex.postings` /
:meth:`KeywordIndex.from_postings`, which is how ``repro.store``
persists it into a snapshot so a serving process can warm-start without
re-scanning the graph.

Thread safety: the index is **immutable after construction** — every
mutation happens in ``__init__`` and all lookups return fresh copies of
the stored sets, never the internals.  Any number of request threads
(see ``repro.serve``) may therefore query one instance concurrently
without locking.
"""

from __future__ import annotations

from repro.faults import fire
from repro.pedigree.graph import PedigreeGraph

__all__ = ["KeywordIndex"]

# Attributes the query interface exposes (Figure 5): names, gender, year,
# and location (parish/district).
_STRING_ATTRIBUTES = ("first_name", "surname", "parish")


class KeywordIndex:
    """Inverted index from QID values to pedigree-graph entity ids."""

    def __init__(self, graph: PedigreeGraph) -> None:
        fire("index.keyword.build")
        self._by_value: dict[tuple[str, str], set[int]] = {}
        self._years: dict[int, set[int]] = {}
        self._genders: dict[str, set[int]] = {}
        for entity in graph:
            for attribute in _STRING_ATTRIBUTES:
                for value in entity.values.get(attribute, ()):
                    key = (attribute, value.lower())
                    self._by_value.setdefault(key, set()).add(entity.entity_id)
            for year_value in entity.values.get("event_year", ()):
                try:
                    year = int(year_value)
                except ValueError:
                    continue
                self._years.setdefault(year, set()).add(entity.entity_id)
            if entity.gender:
                self._genders.setdefault(entity.gender, set()).add(entity.entity_id)

    # ------------------------------------------------------------------
    # Persistence state (repro.store)
    # ------------------------------------------------------------------

    def postings(
        self,
    ) -> tuple[
        dict[tuple[str, str], list[int]],
        dict[int, list[int]],
        dict[str, list[int]],
    ]:
        """The full index state as sorted posting lists.

        Returns ``(by_value, years, genders)`` — plain dicts of sorted
        entity-id lists, suitable for serialisation.  The internals are
        copied, never exposed.
        """
        return (
            {key: sorted(ids) for key, ids in self._by_value.items()},
            {year: sorted(ids) for year, ids in self._years.items()},
            {gender: sorted(ids) for gender, ids in self._genders.items()},
        )

    @classmethod
    def from_postings(
        cls,
        by_value: dict[tuple[str, str], list[int]],
        years: dict[int, list[int]],
        genders: dict[str, list[int]],
    ) -> "KeywordIndex":
        """Rebuild an index from :meth:`postings` output, skipping the
        graph scan entirely (snapshot warm start)."""
        index = cls.__new__(cls)
        index._by_value = {key: set(ids) for key, ids in by_value.items()}
        index._years = {int(year): set(ids) for year, ids in years.items()}
        index._genders = {gender: set(ids) for gender, ids in genders.items()}
        return index

    # ------------------------------------------------------------------

    def lookup(self, attribute: str, value: str) -> set[int]:
        """Entity ids whose ``attribute`` exactly equals ``value``."""
        return set(self._by_value.get((attribute, value.lower()), ()))

    def lookup_year_range(self, year_from: int, year_to: int) -> set[int]:
        """Entity ids with any event year inside [year_from, year_to]."""
        if year_to < year_from:
            raise ValueError(f"empty year range: {year_from}..{year_to}")
        out: set[int] = set()
        for year in range(year_from, year_to + 1):
            out |= self._years.get(year, set())
        return out

    def lookup_gender(self, gender: str) -> set[int]:
        """Entity ids of the given gender ('m' or 'f')."""
        return set(self._genders.get(gender, ()))

    def values(self, attribute: str) -> list[str]:
        """All distinct indexed values of ``attribute`` (for S-building)."""
        return sorted(
            value for (attr, value) in self._by_value if attr == attribute
        )

    def n_keys(self) -> int:
        """Total number of distinct (attribute, value) keys."""
        return len(self._by_value) + len(self._years) + len(self._genders)
