"""Similarity-aware index S (Christen, Gayler & Hawking, CIKM 2009).

For every string value in the keyword index, pre-compute all other values
of the same attribute that share at least one bigram and have
Jaro-Winkler similarity ≥ ``s_t``; store those neighbour lists with their
similarities.  At query time an unseen value is compared only against
values sharing a bigram, and the result is *cached back into S* so
repeated queries of the same misspelling are instant (paper Section 7).

Thread safety: after ``__init__`` the value universe and bigram index are
never mutated — only the neighbour cache grows, under a lock, when
:meth:`matches` sees an unseen value.  Concurrent searches (the
``repro.serve`` subsystem runs many per process) may race to compute the
same unseen value; both arrive at the identical list and the second
write is a harmless overwrite.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.faults import fire
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.qgram import bigrams

__all__ = ["MemmapSimilarityIndex", "SimilarityAwareIndex"]


class SimilarityAwareIndex:
    """Pre-computed approximate-match neighbourhoods for one attribute's
    value universe."""

    def __init__(
        self,
        values: list[str],
        threshold: float = 0.5,
        precompute: bool = True,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        if precompute:
            fire("index.simindex.build")
        self.threshold = threshold
        self._values = sorted(set(v.lower() for v in values))
        # Bigram inverted index over the value universe.
        self._gram_index: dict[str, list[str]] = {}
        for value in self._values:
            for gram in bigrams(value):
                self._gram_index.setdefault(gram, []).append(value)
        # value -> [(neighbour, similarity)] with similarity >= threshold,
        # sorted by descending similarity.  The value itself is included
        # with similarity 1.0 so lookups need no special case.  Writes
        # after construction (query-time caching of unseen values) take
        # _cache_lock; the stored lists are never mutated in place.
        self._neighbours: dict[str, list[tuple[str, float]]] = {}
        self._cache_lock = threading.Lock()
        if precompute:
            for value in self._values:
                self._neighbours[value] = self._compute_neighbours(value)

    # ------------------------------------------------------------------
    # Persistence state (repro.store)
    # ------------------------------------------------------------------

    def neighbour_state(self) -> dict[str, list[tuple[str, float]]]:
        """Copy of every stored neighbour list (including query-time
        cached entries), for serialisation into a snapshot."""
        with self._cache_lock:
            return {key: list(pairs) for key, pairs in self._neighbours.items()}

    @classmethod
    def from_precomputed(
        cls,
        values: list[str],
        neighbours: dict[str, list[tuple[str, float]]],
        threshold: float,
    ) -> "SimilarityAwareIndex":
        """Rebuild an index from saved state, skipping the expensive
        all-pairs neighbour computation (snapshot warm start).

        The cheap bigram inverted index is rebuilt from ``values``; the
        precomputed neighbour lists are adopted as-is.
        """
        index = cls(values, threshold=threshold, precompute=False)
        index._neighbours = {
            key: list(pairs) for key, pairs in neighbours.items()
        }
        return index

    # ------------------------------------------------------------------

    def _candidates(self, value: str) -> set[str]:
        out: set[str] = set()
        for gram in bigrams(value):
            out.update(self._gram_index.get(gram, ()))
        return out

    def _compute_neighbours(self, value: str) -> list[tuple[str, float]]:
        scored: list[tuple[str, float]] = []
        for candidate in self._candidates(value):
            similarity = (
                1.0 if candidate == value
                else jaro_winkler_similarity(value, candidate)
            )
            if similarity >= self.threshold:
                scored.append((candidate, similarity))
        if value in self._values and all(v != value for v, _ in scored):
            scored.append((value, 1.0))
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored

    # ------------------------------------------------------------------

    def matches(self, value: str) -> list[tuple[str, float]]:
        """Indexed values similar to ``value`` with their similarities.

        Known values answer from the pre-computed lists; unseen values are
        resolved against bigram-sharing candidates and the result is
        cached into the index for future queries (the paper's Section 7
        behaviour).
        """
        value = value.lower()
        cached = self._neighbours.get(value)
        if cached is None:
            # Compute outside the lock (pure function of immutable
            # state); racing threads compute identical lists, so the
            # last write winning is safe.
            cached = self._compute_neighbours(value)
            with self._cache_lock:
                self._neighbours[value] = cached
        return list(cached)

    def __contains__(self, value: str) -> bool:
        return value.lower() in self._neighbours

    def n_values(self) -> int:
        """Number of distinct values in the indexed universe."""
        return len(self._values)

    def n_precomputed_pairs(self) -> int:
        """Total stored (value, neighbour) similarity entries."""
        with self._cache_lock:
            return sum(len(v) for v in self._neighbours.values())


class MemmapSimilarityIndex(SimilarityAwareIndex):
    """A :class:`SimilarityAwareIndex` whose neighbour lists stay on disk.

    Built by :func:`repro.store.codecs.load_sim_indexes_memmap` from the
    raw ``.npy`` snapshot artefacts.  The precomputed neighbour lists —
    the expensive all-pairs payload — remain read-only ``numpy.memmap``
    views looked up by binary search over the sorted key array; only
    *unseen* query values (misspellings outside the universe) fall back
    to the eager path, which lazily builds the bigram inverted index on
    first need and caches the computed list exactly like the parent.

    A pre-fork serving master maps the arrays once and forks, so workers
    share the pages; per-worker private memory holds only the lazy
    query-time cache.
    """

    def __init__(
        self,
        values,
        nb_keys,
        nb_offsets,
        nb_targets,
        nb_sims,
        threshold: float,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.threshold = threshold
        # The value universe stays a (memory-mapped) unicode array; the
        # eager parent's membership / iteration uses still work on it.
        self._values = values
        self._nb_keys = nb_keys          # sorted unicode array
        self._nb_offsets = nb_offsets    # int64, len(nb_keys) + 1
        self._nb_targets = nb_targets    # unicode, flattened lists
        self._nb_sims = nb_sims          # float64, parallel to targets
        # Query-time cache of values not in the precomputed key array;
        # same contract as the parent's _neighbours growth.
        self._neighbours = {}
        self._cache_lock = threading.Lock()
        # Bigram index is only needed for unseen values: build lazily so
        # a fork-shared worker that never sees a misspelling pays nothing.
        self._gram_index = None
        self._gram_lock = threading.Lock()

    def _mapped_row(self, value: str) -> int | None:
        n = len(self._nb_keys)
        if n == 0:
            return None
        row = int(np.searchsorted(self._nb_keys, value))
        if row < n and str(self._nb_keys[row]) == value:
            return row
        return None

    def _mapped_list(self, row: int) -> list[tuple[str, float]]:
        start = int(self._nb_offsets[row])
        end = int(self._nb_offsets[row + 1])
        targets = self._nb_targets[start:end]
        sims = self._nb_sims[start:end]
        return [(str(t), float(s)) for t, s in zip(targets, sims)]

    def _candidates(self, value: str) -> set[str]:
        if self._gram_index is None:
            with self._gram_lock:
                if self._gram_index is None:
                    gram_index: dict[str, list[str]] = {}
                    for stored in self._values:
                        stored = str(stored)
                        for gram in bigrams(stored):
                            gram_index.setdefault(gram, []).append(stored)
                    self._gram_index = gram_index
        return super()._candidates(value)

    def matches(self, value: str) -> list[tuple[str, float]]:
        value = value.lower()
        row = self._mapped_row(value)
        if row is not None:
            return self._mapped_list(row)
        cached = self._neighbours.get(value)
        if cached is None:
            cached = self._compute_neighbours(value)
            with self._cache_lock:
                self._neighbours[value] = cached
        return list(cached)

    def __contains__(self, value: str) -> bool:
        value = value.lower()
        return self._mapped_row(value) is not None or value in self._neighbours

    def neighbour_state(self) -> dict[str, list[tuple[str, float]]]:
        """Materialise every stored list (mapped + query-time cached)."""
        out = {
            str(key): self._mapped_list(row)
            for row, key in enumerate(self._nb_keys)
        }
        with self._cache_lock:
            for key, pairs in self._neighbours.items():
                out.setdefault(key, list(pairs))
        return out

    def n_precomputed_pairs(self) -> int:
        with self._cache_lock:
            cached = sum(len(v) for v in self._neighbours.values())
        return int(self._nb_offsets[-1]) + cached
