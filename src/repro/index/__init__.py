"""Index structures for the online phase (paper Section 6).

* :class:`~repro.index.keyword.KeywordIndex` (``K``) — inverted index
  from QID values (first name, surname, gender, year, location) to
  entity ids in the pedigree graph;
* :class:`~repro.index.simindex.SimilarityAwareIndex` (``S``) — the
  pre-computed approximate-match index of Christen, Gayler & Hawking
  (CIKM 2009): for every indexed string, all other indexed strings
  sharing at least one bigram whose Jaro-Winkler similarity reaches
  ``s_t`` (default 0.5), with the similarity stored.

Both indexes also come in memory-mapped variants
(:class:`~repro.index.keyword.MemmapKeywordIndex`,
:class:`~repro.index.simindex.MemmapSimilarityIndex`) that back their
bulk arrays with read-only ``numpy.memmap`` views of a snapshot's raw
artefacts — the substrate of the pre-fork serving tier, where N worker
processes share one mapped copy of the index data.
"""

from repro.index.keyword import KeywordIndex, MemmapKeywordIndex
from repro.index.simindex import MemmapSimilarityIndex, SimilarityAwareIndex

__all__ = [
    "KeywordIndex",
    "MemmapKeywordIndex",
    "MemmapSimilarityIndex",
    "SimilarityAwareIndex",
]
