"""Index structures for the online phase (paper Section 6).

* :class:`~repro.index.keyword.KeywordIndex` (``K``) — inverted index
  from QID values (first name, surname, gender, year, location) to
  entity ids in the pedigree graph;
* :class:`~repro.index.simindex.SimilarityAwareIndex` (``S``) — the
  pre-computed approximate-match index of Christen, Gayler & Hawking
  (CIKM 2009): for every indexed string, all other indexed strings
  sharing at least one bigram whose Jaro-Winkler similarity reaches
  ``s_t`` (default 0.5), with the similarity stored.
"""

from repro.index.keyword import KeywordIndex
from repro.index.simindex import SimilarityAwareIndex

__all__ = ["KeywordIndex", "SimilarityAwareIndex"]
