"""Resource-exhaustion guards for durable writers.

Snapshot commits, journal appends, and checkpoint saves must either
complete or leave no trace — a half-written snapshot directory or a torn
journal head is worse than a clean failure.  Two helpers enforce that:

:func:`check_free_space`
    Preflight before a writer starts: raise :class:`ResourceFault` with
    a remediation hint if the target filesystem has less headroom than
    the write plausibly needs.  The estimate errs low on purpose — the
    goal is catching the obviously-full disk *before* payload bytes hit
    it, not byte-exact accounting (the writers stay atomic either way).

:func:`as_resource_fault`
    Translate an exhaustion-class :class:`OSError` (ENOSPC/EMFILE/...)
    caught mid-write into a :class:`ResourceFault` whose message names
    the writer and what the operator should do about it.  Returns
    ``None`` for any other exception so callers can re-raise unchanged.
"""

from __future__ import annotations

import os

from repro.faults.taxonomy import RESOURCE, ResourceFault, classify

__all__ = [
    "as_resource_fault",
    "check_free_space",
    "free_bytes",
    "is_exhaustion",
]

#: Minimum headroom any durable writer insists on, even for tiny writes:
#: a filesystem this close to full will tear the *next* write anyway.
MIN_HEADROOM_BYTES = 1 << 20  # 1 MiB


def free_bytes(path: os.PathLike | str) -> int:
    """Free bytes (for an unprivileged writer) on ``path``'s filesystem."""
    stats = os.statvfs(path)
    return stats.f_bavail * stats.f_frsize


def is_exhaustion(exc: BaseException) -> bool:
    """True when ``exc`` signals machine-resource exhaustion."""
    return classify(exc) == RESOURCE


def check_free_space(
    path: os.PathLike | str,
    need_bytes: int,
    what: str,
) -> None:
    """Raise :class:`ResourceFault` unless ``path`` has room for the write.

    ``what`` names the writer in the error ("snapshot store", "stream
    journal", ...); ``need_bytes`` is the caller's (low) size estimate.
    """
    need = max(int(need_bytes), MIN_HEADROOM_BYTES)
    try:
        available = free_bytes(path)
    except OSError:
        return  # exotic filesystem without statvfs: let the write decide
    if available < need:
        raise ResourceFault(
            f"{what}: refusing to write — only {available} bytes free under "
            f"{os.fspath(path)!r}, need at least {need}; free disk space or "
            f"point the {what} at a volume with headroom, then re-run"
        )


def as_resource_fault(
    exc: BaseException,
    what: str,
    hint: str,
) -> ResourceFault | None:
    """Wrap an exhaustion-class error with writer context, else ``None``."""
    if not is_exhaustion(exc):
        return None
    return ResourceFault(f"{what}: {exc}; {hint}")
