"""Circuit breaker: stop hammering a failing backend, probe for recovery.

Standard three-state machine:

- ``closed`` — calls flow; consecutive failures are counted.
- ``open`` — after ``failure_threshold`` consecutive failures, calls
  are refused immediately (callers serve stale data or shed load)
  until ``reset_timeout_s`` has elapsed.
- ``half_open`` — after the timeout, up to ``half_open_probes`` calls
  are let through as recovery probes.  One success closes the breaker;
  one failure re-opens it and restarts the timer.

The clock is injectable so chaos tests drive recovery without real
sleeps.  All transitions are lock-guarded; the breaker is shared by the
threaded HTTP server.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.faults.taxonomy import TRANSIENT, FaultError
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry

__all__ = ["CircuitBreaker", "CircuitOpen", "CLOSED", "OPEN", "HALF_OPEN"]

logger = get_logger("faults.breaker")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpen(FaultError):
    """Refused without calling the backend: the circuit is open."""

    category = TRANSIENT

    def __init__(self, name: str, retry_after_s: float):
        super().__init__(
            f"circuit {name!r} is open; retry in {retry_after_s:.1f}s"
        )
        self.name = name
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    def __init__(
        self,
        name: str,
        failure_threshold: int = 3,
        reset_timeout_s: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._metrics = metrics
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    # ------------------------------------------------------------------

    def _tick(self) -> None:
        """Lazy open→half_open transition (caller holds the lock)."""
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = HALF_OPEN
            self._probes = 0
            logger.info("circuit %s: open -> half_open (probing)", self.name)

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def retry_after_s(self) -> float:
        """Seconds until the breaker would next admit a probe (>= 0)."""
        with self._lock:
            self._tick()
            if self._state != OPEN:
                return 0.0
            return max(
                0.0, self._opened_at + self.reset_timeout_s - self._clock()
            )

    def allow(self) -> bool:
        """May a call proceed right now?  (Half-open admits probes.)"""
        with self._lock:
            self._tick()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes < self.half_open_probes:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state != CLOSED:
                logger.info("circuit %s: %s -> closed", self.name, self._state)
            self._state = CLOSED
            self._failures = 0

    def record_failure(self, exc: BaseException | None = None) -> None:
        with self._lock:
            self._tick()
            self._failures += 1
            reopen = self._state == HALF_OPEN
            if reopen or (
                self._state == CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                if self._metrics is not None:
                    self._metrics.inc(f"breaker.{self.name}.opened")
                logger.warning(
                    "circuit %s opened after %d failure(s)%s",
                    self.name,
                    self._failures,
                    f" ({exc})" if exc is not None else "",
                )

    def reject(self) -> CircuitOpen:
        """The exception an `allow() == False` caller should raise/serve."""
        return CircuitOpen(self.name, max(self.retry_after_s(), 0.0))
