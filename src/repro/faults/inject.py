"""Deterministic fault injection for chaos testing.

Production code is sprinkled with named *sites*::

    from repro.faults import fire
    fire("store.load.graph")

With no injector installed, ``fire`` is one global read and a ``None``
check — free.  A chaos test (or an operator via the ``SNAPS_FAULTS``
environment variable) installs a :class:`FaultInjector` built from
:class:`FaultSpec` rules, and matching sites then raise, sleep, or tear
a just-written file — deterministically: a spec fires on exact call
counts (``after``/``times``), never on a coin flip, so every chaos run
is reproducible.

Spec string syntax (``;``-separated rules)::

    site-glob:mode[:key=value...]

    checkpoint.saved.merging:error:times=1
    store.load.*:error:times=2:category=transient
    query.search:latency:latency_s=0.05
    checkpoint.torn.blocking:torn_write:times=1

Modes: ``error`` raises :class:`InjectedFault`, ``latency`` sleeps
``latency_s`` then proceeds, ``torn_write`` (honoured only by
:func:`corrupt_write` call sites) truncates the target file to half its
bytes and then raises — simulating a crash mid-flush.

Three modes exist for supervised-execution chaos (``repro.supervise``):

``worker_crash``
    ``os._exit(86)`` — the process dies without cleanup, exactly like a
    segfault or an OOM kill.  As a safety net it only *exits* when fired
    in a process other than the one that built the injector (i.e. a pool
    worker); fired in the supervisor process itself it raises a
    ``permanent`` :class:`InjectedFault` instead of killing the test
    runner or CLI.

``hang``
    Sleeps ``latency_s`` (default 60s) — long past any sane task
    deadline, so the supervisor's heartbeat monitor must detect and kill
    it.  If nothing kills it, the task eventually completes: a hang spec
    can never wedge a test run forever.

``enospc``
    Raises a real ``OSError(errno.ENOSPC, ...)`` so production
    classification and atomic-abort paths are exercised end to end.
"""

from __future__ import annotations

import errno as _errno
import fnmatch
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.faults.taxonomy import CATEGORIES, PERMANENT, TRANSIENT, FaultError

__all__ = [
    "ENV_VAR",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "active",
    "corrupt_write",
    "fire",
    "injected",
    "install",
    "install_from_env",
    "parse_specs",
    "uninstall",
]

ENV_VAR = "SNAPS_FAULTS"
MODES = ("error", "latency", "torn_write", "worker_crash", "hang", "enospc")

#: Exit status of a ``worker_crash`` fire — distinctive in worker logs.
CRASH_EXIT_CODE = 86

#: A ``hang`` spec with no explicit ``latency_s`` oversleeps by this
#: much — far past any reasonable task deadline, but bounded so an
#: unsupervised code path cannot wedge forever.
DEFAULT_HANG_S = 60.0


class InjectedFault(FaultError):
    """Raised by a firing fault site; ``category`` set per spec."""

    def __init__(self, site: str, category: str = TRANSIENT, mode: str = "error"):
        super().__init__(f"injected fault at {site!r} ({mode}, {category})")
        self.site = site
        self.category = category
        self.mode = mode

    def __reduce__(self):
        # Default Exception pickling would re-call ``__init__`` with the
        # rendered message as ``site``, double-wrapping the text every
        # time the fault crosses a process boundary.
        return (type(self), (self.site, self.category, self.mode))


@dataclass
class FaultSpec:
    """One injection rule.

    ``site`` is an ``fnmatch`` glob over site names.  The rule skips the
    first ``after`` matching calls, then fires on the next ``times``
    calls (``None`` = forever).
    """

    site: str
    mode: str = "error"
    after: int = 0
    times: int | None = 1
    category: str = TRANSIENT
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r} (want {MODES})")
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown fault category {self.category!r}")

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)


@dataclass
class _SpecState:
    spec: FaultSpec
    seen: int = 0
    fired: int = 0


class FaultInjector:
    """Evaluates specs at fault sites; thread-safe, deterministic."""

    def __init__(
        self,
        specs: list[FaultSpec],
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._states = [_SpecState(spec) for spec in specs]
        self._sleep = sleep
        self._lock = threading.Lock()
        # Recorded so worker_crash only ever _exits forked children, not
        # the process that installed the injector (pytest, the CLI).
        self._owner_pid = os.getpid()

    @property
    def specs(self) -> list[FaultSpec]:
        return [state.spec for state in self._states]

    def fired(self, site_glob: str = "*") -> int:
        """Total fires across specs whose site pattern equals/matches."""
        with self._lock:
            return sum(
                s.fired
                for s in self._states
                if fnmatch.fnmatchcase(s.spec.site, site_glob)
            )

    def _arm(self, site: str, modes: tuple[str, ...]) -> FaultSpec | None:
        """Advance counters for ``site``; return the spec to fire, if any."""
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.mode not in modes or not spec.matches(site):
                    continue
                state.seen += 1
                if state.seen <= spec.after:
                    continue
                if spec.times is not None and state.fired >= spec.times:
                    continue
                state.fired += 1
                return spec
        return None

    def fire(self, site: str) -> None:
        """Raise, delay, crash, or oversleep if a spec covers ``site``."""
        spec = self._arm(
            site, ("error", "latency", "worker_crash", "hang", "enospc")
        )
        if spec is None:
            return
        if spec.mode == "latency":
            self._sleep(spec.latency_s)
            return
        if spec.mode == "hang":
            self._sleep(spec.latency_s if spec.latency_s > 0 else DEFAULT_HANG_S)
            return
        if spec.mode == "worker_crash":
            if os.getpid() != self._owner_pid:
                os._exit(CRASH_EXIT_CODE)
            # Fired in the installing process: dying here would take the
            # test runner/CLI with it, so fail loudly instead.
            raise InjectedFault(site, PERMANENT, spec.mode)
        if spec.mode == "enospc":
            raise OSError(_errno.ENOSPC, f"injected ENOSPC at {site!r}")
        raise InjectedFault(site, spec.category, spec.mode)

    def corrupt_write(self, site: str, path: os.PathLike | str) -> None:
        """Tear ``path`` (truncate to half) and raise, if a spec covers it."""
        spec = self._arm(site, ("torn_write",))
        if spec is None:
            return
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        raise InjectedFault(site, spec.category, spec.mode)


def parse_specs(text: str) -> list[FaultSpec]:
    """Parse the ``SNAPS_FAULTS`` spec-string syntax (see module doc)."""
    specs: list[FaultSpec] = []
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        site = parts[0]
        if not site:
            raise ValueError(f"fault spec {chunk!r}: empty site pattern")
        kwargs: dict[str, object] = {}
        if len(parts) > 1:
            kwargs["mode"] = parts[1]
        for option in parts[2:]:
            key, sep, value = option.partition("=")
            if not sep:
                raise ValueError(
                    f"fault spec {chunk!r}: option {option!r} is not key=value"
                )
            if key in ("after", "times"):
                kwargs[key] = None if value == "none" else int(value)
            elif key == "latency_s":
                kwargs[key] = float(value)
            elif key in ("category", "mode"):
                kwargs[key] = value
            else:
                raise ValueError(f"fault spec {chunk!r}: unknown option {key!r}")
        specs.append(FaultSpec(site, **kwargs))  # type: ignore[arg-type]
    return specs


# ----------------------------------------------------------------------
# Module-level installation — the production fast path
# ----------------------------------------------------------------------

_ACTIVE: FaultInjector | None = None


def install(injector: FaultInjector) -> FaultInjector:
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> FaultInjector | None:
    return _ACTIVE


def install_from_env(environ: dict | None = None) -> FaultInjector | None:
    """Install an injector from ``SNAPS_FAULTS`` if set; else leave as-is."""
    text = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    if not text.strip():
        return None
    return install(FaultInjector(parse_specs(text)))


def fire(site: str) -> None:
    """Production hook: no-op unless an injector is installed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site)


def corrupt_write(site: str, path: os.PathLike | str) -> None:
    """Production hook for torn-write sites (call after writing ``path``)."""
    injector = _ACTIVE
    if injector is not None:
        injector.corrupt_write(site, path)


@contextmanager
def injected(
    specs: str | list[FaultSpec],
    sleep: Callable[[float], None] = time.sleep,
) -> Iterator[FaultInjector]:
    """Install an injector for the duration of a ``with`` block (tests)."""
    if isinstance(specs, str):
        specs = parse_specs(specs)
    previous = _ACTIVE
    injector = install(FaultInjector(specs, sleep=sleep))
    try:
        yield injector
    finally:
        install(previous) if previous is not None else uninstall()
