"""Bounded retries with exponential backoff and deterministic jitter.

Only *transient*-classified failures (see :mod:`repro.faults.taxonomy`)
are retried by default — a schema mismatch or a corrupt payload will
fail the same way every time, so retrying it just delays the error.

Jitter is drawn from a seeded :class:`random.Random`, so the delay
sequence of a policy instance is reproducible — chaos tests assert on
the exact backoff schedule.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.faults.taxonomy import TRANSIENT, classify

__all__ = ["RetryPolicy"]

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """``call(fn)`` runs ``fn`` up to ``max_attempts`` times.

    Delay before retry *i* (0-based) is
    ``min(max_delay_s, base_delay_s * 2**i) * (1 + jitter * u_i)`` with
    ``u_i`` drawn from ``Random(seed)`` — exponential growth, capped,
    spread by up to ``jitter`` (a fraction) to avoid thundering herds.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.25
    seed: int = 0
    retry_on: tuple[str, ...] = (TRANSIENT,)
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._rng = random.Random(self.seed)

    def backoff_s(self, attempt: int) -> float:
        """Delay after failed attempt ``attempt`` (0-based)."""
        base = min(self.max_delay_s, self.base_delay_s * (2**attempt))
        return base * (1.0 + self.jitter * self._rng.random())

    def call(
        self,
        fn: Callable[[], T],
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> T:
        """Run ``fn``, retrying retryable failures with backoff.

        ``on_retry(attempt, exc)`` is invoked before each sleep (for
        metrics/logging).  The final failure is re-raised unchanged.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except Exception as exc:
                if (
                    classify(exc) not in self.retry_on
                    or attempt == self.max_attempts - 1
                ):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.sleep(self.backoff_s(attempt))
        raise AssertionError("unreachable")  # pragma: no cover
