"""Failure taxonomy shared by every fault-tolerance layer.

Errors in the pipeline fall into three categories, and each layer reacts
to them differently:

``transient``
    The operation might succeed if simply retried: interrupted I/O,
    timeouts, a store briefly mid-commit.  Retry policies only retry
    these; circuit breakers treat a run of them as "backend down".

``permanent``
    Retrying is pointless: schema-version mismatches, programming
    errors, invalid arguments.  Fail fast and surface the message.

``data``
    The *input* is bad, not the code or the environment: malformed CSV
    rows, dangling certificate references, corrupt snapshot payloads.
    These route to quarantine/diagnostic paths rather than retries.

``resource``
    The *machine* is exhausted: disk full (ENOSPC), file-descriptor
    limits (EMFILE/ENFILE), quota exceeded.  Retrying immediately is
    pointless — the operator must free the resource — so writers fail
    fast and atomically, with a remediation hint in the message.

Classification is deliberately name-based for repro's own exception
types so this module stays import-light (no dependency on ``repro.store``
or ``repro.data``, both of which import *us* for fault sites).
"""

from __future__ import annotations

import errno

__all__ = [
    "CATEGORIES",
    "DATA",
    "PERMANENT",
    "RESOURCE",
    "TRANSIENT",
    "DataFault",
    "FaultError",
    "PermanentFault",
    "ResourceFault",
    "TransientFault",
    "classify",
    "register",
]

TRANSIENT = "transient"
PERMANENT = "permanent"
DATA = "data"
RESOURCE = "resource"
CATEGORIES = (TRANSIENT, PERMANENT, DATA, RESOURCE)

# OSError errnos that mean "the machine ran out", not "the call was
# unlucky".  A bare OSError with no errno stays transient (below).
_RESOURCE_ERRNOS = frozenset(
    code
    for code in (
        errno.ENOSPC,  # no space left on device
        errno.EMFILE,  # process file-descriptor table full
        errno.ENFILE,  # system file table full
        getattr(errno, "EDQUOT", None),  # disk quota exceeded
    )
    if code is not None
)


class FaultError(Exception):
    """Base for exceptions that carry their own category."""

    category: str = PERMANENT


class TransientFault(FaultError):
    category = TRANSIENT


class PermanentFault(FaultError):
    category = PERMANENT


class DataFault(FaultError):
    category = DATA


class ResourceFault(FaultError):
    category = RESOURCE


# repro's own exception types, classified by class name so the taxonomy
# has no imports back into the layers that raise them.  The pool-death
# pair (BrokenProcessPool from a crashed worker, EOFError from its dead
# pipe) is transient: the supervisor rebuilds the pool and resubmits, so
# RetryPolicy treats pool death like any other retryable blip instead of
# leaking provider-specific exceptions.
_BY_NAME: dict[str, str] = {
    "SnapshotIntegrityError": DATA,  # corrupt/truncated payload on disk
    "SnapshotSchemaError": PERMANENT,  # version skew: retrying cannot help
    "DatasetLoadError": DATA,
    "CheckpointError": DATA,
    "BrokenProcessPool": TRANSIENT,  # worker died; pool is rebuildable
    "BrokenExecutor": TRANSIENT,
    "TaskQuarantinedError": DATA,  # poison input isolated by the supervisor
}

# Stdlib types, most specific first (isinstance walk).
_BY_TYPE: list[tuple[type[BaseException], str]] = [
    (TimeoutError, TRANSIENT),
    (InterruptedError, TRANSIENT),
    (ConnectionError, TRANSIENT),
    (BlockingIOError, TRANSIENT),
    (EOFError, TRANSIENT),  # dead worker pipe
    (OSError, TRANSIENT),
    (MemoryError, TRANSIENT),
]


def register(exc_type: type[BaseException], category: str) -> None:
    """Classify ``exc_type`` (and subclasses) as ``category``."""
    if category not in CATEGORIES:
        raise ValueError(f"unknown fault category {category!r}")
    _BY_TYPE.insert(0, (exc_type, category))


def classify(exc: BaseException) -> str:
    """Category of ``exc``: one of ``transient``/``permanent``/``data``.

    Self-describing :class:`FaultError` subclasses win; then repro's own
    exception names; then stdlib types; everything else — ``KeyError``,
    ``ValueError``, arbitrary bugs — is ``permanent`` (retrying a bug
    never helps).
    """
    if isinstance(exc, FaultError):
        return exc.category
    for klass in type(exc).__mro__:
        category = _BY_NAME.get(klass.__name__)
        if category is not None:
            return category
    if isinstance(exc, OSError) and exc.errno in _RESOURCE_ERRNOS:
        return RESOURCE
    for exc_type, category in _BY_TYPE:
        if isinstance(exc, exc_type):
            return category
    return PERMANENT
