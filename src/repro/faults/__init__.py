"""Fault-tolerance substrate: taxonomy, injection, retries, breakers.

One module classifies every failure (transient/permanent/data) so the
loader, resolver, store, and server react consistently; the injector
lets chaos tests (or ``SNAPS_FAULTS``) raise those failures on demand at
named production sites.
"""

from repro.faults.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpen,
)
from repro.faults.inject import (
    ENV_VAR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active,
    corrupt_write,
    fire,
    injected,
    install,
    install_from_env,
    parse_specs,
    uninstall,
)
from repro.faults.resources import (
    as_resource_fault,
    check_free_space,
    free_bytes,
    is_exhaustion,
)
from repro.faults.retry import RetryPolicy
from repro.faults.taxonomy import (
    CATEGORIES,
    DATA,
    PERMANENT,
    RESOURCE,
    TRANSIENT,
    DataFault,
    FaultError,
    PermanentFault,
    ResourceFault,
    TransientFault,
    classify,
    register,
)

__all__ = [
    "CATEGORIES",
    "CLOSED",
    "DATA",
    "ENV_VAR",
    "HALF_OPEN",
    "OPEN",
    "PERMANENT",
    "RESOURCE",
    "TRANSIENT",
    "CircuitBreaker",
    "CircuitOpen",
    "DataFault",
    "FaultError",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PermanentFault",
    "ResourceFault",
    "RetryPolicy",
    "TransientFault",
    "active",
    "as_resource_fault",
    "check_free_space",
    "classify",
    "corrupt_write",
    "free_bytes",
    "is_exhaustion",
    "fire",
    "injected",
    "install",
    "install_from_env",
    "parse_specs",
    "register",
    "uninstall",
]
