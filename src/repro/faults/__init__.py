"""Fault-tolerance substrate: taxonomy, injection, retries, breakers.

One module classifies every failure (transient/permanent/data) so the
loader, resolver, store, and server react consistently; the injector
lets chaos tests (or ``SNAPS_FAULTS``) raise those failures on demand at
named production sites.
"""

from repro.faults.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpen,
)
from repro.faults.inject import (
    ENV_VAR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active,
    corrupt_write,
    fire,
    injected,
    install,
    install_from_env,
    parse_specs,
    uninstall,
)
from repro.faults.retry import RetryPolicy
from repro.faults.taxonomy import (
    CATEGORIES,
    DATA,
    PERMANENT,
    TRANSIENT,
    DataFault,
    FaultError,
    PermanentFault,
    TransientFault,
    classify,
    register,
)

__all__ = [
    "CATEGORIES",
    "CLOSED",
    "DATA",
    "ENV_VAR",
    "HALF_OPEN",
    "OPEN",
    "PERMANENT",
    "TRANSIENT",
    "CircuitBreaker",
    "CircuitOpen",
    "DataFault",
    "FaultError",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "PermanentFault",
    "RetryPolicy",
    "TransientFault",
    "active",
    "classify",
    "corrupt_write",
    "fire",
    "injected",
    "install",
    "install_from_env",
    "parse_specs",
    "register",
    "uninstall",
]
