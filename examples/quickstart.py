"""Quickstart: resolve a synthetic certificate collection and search it.

Runs the whole SNAPS workflow end to end on a small dataset:

1. simulate a 19th-century Scottish population and its vital-event
   certificates (with transcription noise and complete ground truth);
2. run the unsupervised graph-based entity resolution pipeline;
3. evaluate linkage quality against the ground truth;
4. build the pedigree graph and query it;
5. extract and print a family pedigree for the top hit.

Run:  python examples/quickstart.py
"""

from repro import SnapsConfig, SnapsResolver, make_tiny_dataset
from repro.eval import evaluate_linkage
from repro.pedigree import build_pedigree_graph, extract_pedigree, render_ascii_tree
from repro.query import Query, QueryEngine


def main() -> None:
    # 1. Data: certificates with hidden ground-truth person ids.
    dataset = make_tiny_dataset(seed=3)
    print(f"dataset: {dataset.describe()}")

    # 2. Offline: unsupervised graph-based ER.
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    print(
        f"resolved: |N_A|={result.n_atomic} |N_R|={result.n_relational} "
        f"bootstrap={result.bootstrap_merges} merges={result.iterative_merges} "
        f"in {result.timings.total():.2f}s"
    )

    # 3. Evaluate against complete ground truth.
    for role_pair in ("Bp-Bp", "Bp-Dp"):
        ev = evaluate_linkage(
            result.matched_pairs(role_pair),
            dataset.true_match_pairs(role_pair),
            role_pair,
        )
        print(
            f"{role_pair}: P={ev.precision:.1f}% R={ev.recall:.1f}% "
            f"F*={ev.f_star:.1f}%"
        )

    # 4. Online: build the pedigree graph and query it.
    graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(graph)
    target = next(
        e for e in graph
        if e.first("first_name") and e.first("surname") and graph.children(e.entity_id)
    )
    query = Query(
        first_name=target.first("first_name"),
        surname=target.first("surname"),
    )
    print(f"\nquery: {query.first_name} {query.surname}")
    for hit in engine.search(query, top_m=5):
        kinds = ",".join(f"{k}={v}" for k, v in sorted(hit.match_kinds.items()))
        print(f"  {hit.score_percent:6.2f}%  {hit.entity.display_name()}  ({kinds})")

    # 5. Extract and render the top hit's 2-generation pedigree.
    top = engine.search(query, top_m=1)[0]
    pedigree = extract_pedigree(graph, top.entity.entity_id, generations=2)
    print(f"\nfamily pedigree of {top.entity.display_name()}:")
    print(render_ascii_tree(pedigree))


if __name__ == "__main__":
    main()
