"""Family pedigree search — the Genetics Genealogy Team scenario.

Reproduces the paper's motivating workflow (Figures 5–8): a genetics
counsellor receives a patient referral, searches the statutory records
for the patient's relative by (possibly misspelled) name, picks the best
hit from the ranked result list, and obtains the multi-generation family
pedigree that the clinical geneticists use for risk assessment.

Run:  python examples/pedigree_search.py
"""

from repro import SnapsConfig, SnapsResolver, make_ios_dataset
from repro.data.roles import Role
from repro.pedigree import (
    build_pedigree_graph,
    extract_pedigree,
    render_ascii_tree,
    render_dot,
)
from repro.query import Query, QueryEngine
from repro.utils.timer import Timer


def main() -> None:
    # ------------------------------------------------------------------
    # Offline phase (run once, ahead of time).
    # ------------------------------------------------------------------
    print("building the Isle-of-Skye register collection ...")
    dataset = make_ios_dataset(scale=0.15)
    print(f"  {dataset.describe()}")

    print("running unsupervised graph-based entity resolution ...")
    with Timer() as timer:
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
    print(f"  resolved in {timer.elapsed:.1f}s")

    graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(graph)
    print(f"  pedigree graph: {len(graph)} entities, {graph.n_edges()} edges")

    # ------------------------------------------------------------------
    # Online phase: the counsellor searches for a deceased relative.
    # ------------------------------------------------------------------
    # Choose a target who died and had children, then search for them
    # with a deliberately misspelled surname (the paper's Figure 5/6
    # walk-through searches "Douglas Macdonald" and finds variants).
    target = next(
        e for e in graph
        if Role.DD in e.roles
        and e.first("first_name")
        and e.first("surname")
        and graph.children(e.entity_id)
    )
    first = target.first("first_name")
    surname = target.first("surname")
    misspelt = surname[:2] + surname[3:] if len(surname) > 4 else surname

    query = Query(
        first_name=first,
        surname=misspelt,
        record_type="death",
        gender=target.gender,
    )
    print(
        f"\nsearch: forename={query.first_name!r} surname={query.surname!r} "
        f"(death records, gender={query.gender})"
    )
    with Timer() as timer:
        hits = engine.search(query, top_m=10)
    print(f"  {len(hits)} ranked results in {1000 * timer.elapsed:.1f} ms\n")
    print(f"  {'score':>7}  {'name':30}  match kinds")
    for hit in hits:
        kinds = ", ".join(f"{k}:{v}" for k, v in sorted(hit.match_kinds.items()))
        print(f"  {hit.score_percent:6.2f}%  {hit.entity.display_name():30}  {kinds}")

    # ------------------------------------------------------------------
    # The counsellor explores the best hit.
    # ------------------------------------------------------------------
    chosen = hits[0].entity
    with Timer() as timer:
        pedigree = extract_pedigree(graph, chosen.entity_id, generations=2)
    print(
        f"\nfamily pedigree of {chosen.display_name()} "
        f"({len(pedigree)} relatives, extracted in "
        f"{1000 * timer.elapsed:.1f} ms):\n"
    )
    print(render_ascii_tree(pedigree))

    dot_path = "pedigree.dot"
    with open(dot_path, "w") as handle:
        handle.write(render_dot(pedigree))
    print(f"\nGraphviz rendering written to {dot_path} (dot -Tpng {dot_path})")


if __name__ == "__main__":
    main()
