"""Baseline shoot-out: SNAPS vs Attr-Sim, Dep-Graph, Rel-Cluster, and the
supervised Magellan-style pipeline (a miniature of the paper's Table 4).

Run:  python examples/baseline_comparison.py
"""

import statistics
import time

from repro import SnapsConfig, SnapsResolver, make_ios_dataset
from repro.baselines import (
    AttrSimLinker,
    DepGraphLinker,
    FellegiSunterLinker,
    RelClusterLinker,
    SupervisedLinker,
)
from repro.eval import evaluate_linkage


def main() -> None:
    # Ambiguity (and with it the gaps between systems) grows with the
    # population; 0.2 is large enough for the paper's orderings to show.
    dataset = make_ios_dataset(scale=0.2)
    print(f"dataset: {dataset.describe()}\n")
    truth = {rp: dataset.true_match_pairs(rp) for rp in ("Bp-Bp", "Bp-Dp")}

    header = f"{'system':15} {'role pair':9} {'P':>7} {'R':>7} {'F*':>7} {'time':>7}"
    print(header)
    print("-" * len(header))

    systems = [
        ("SNAPS", lambda: SnapsResolver(SnapsConfig()).resolve(dataset)),
        ("Attr-Sim", lambda: AttrSimLinker().link(dataset)),
        ("Fellegi-Sunter", lambda: FellegiSunterLinker().link(dataset)),
        ("Dep-Graph", lambda: DepGraphLinker().link(dataset)),
        ("Rel-Cluster", lambda: RelClusterLinker().link(dataset)),
    ]
    for name, run in systems:
        start = time.perf_counter()
        result = run()
        elapsed = time.perf_counter() - start
        for role_pair in ("Bp-Bp", "Bp-Dp"):
            ev = evaluate_linkage(result.matched_pairs(role_pair), truth[role_pair])
            print(
                f"{name:15} {role_pair:9} {ev.precision:7.2f} {ev.recall:7.2f} "
                f"{ev.f_star:7.2f} {elapsed:6.1f}s"
            )

    # Supervised baseline: mean ± std across classifiers and regimes.
    for role_pair in ("Bp-Bp", "Bp-Dp"):
        start = time.perf_counter()
        outcomes = SupervisedLinker(seed=7).run(dataset, role_pair)
        elapsed = time.perf_counter() - start
        f_stars = [
            evaluate_linkage(o.predicted_pairs, truth[role_pair]).f_star
            for o in outcomes
        ]
        print(
            f"{'Magellan-style':15} {role_pair:9} {'':7} {'':7} "
            f"{statistics.mean(f_stars):5.1f}±{statistics.pstdev(f_stars):4.1f} "
            f"{elapsed:6.1f}s"
        )
    print(
        "\nexpected shape (paper Table 4): SNAPS leads every F* column;"
        "\nAttr-Sim keeps recall but bleeds precision; the supervised"
        "\nbaseline swings widely across classifiers and training regimes."
    )


if __name__ == "__main__":
    main()
