"""Scalability sweep over growing time windows (a miniature Table 6).

Widens the registration window of a BHIC-like synthetic population and
reports per-phase runtimes plus linkage time per node/edge, demonstrating
the near-linear scaling claim of the paper's Section 10.

Run:  python examples/scalability_sweep.py
"""

from repro import SnapsConfig, SnapsResolver, make_bhic_dataset


def main() -> None:
    windows = [(1920, 1935), (1910, 1935), (1900, 1935)]
    header = (
        f"{'window':12} {'records':>8} {'nodes':>8} {'edges':>8} "
        f"{'bootstrap':>10} {'merge':>8} {'ms/node':>8} {'ms/edge':>8}"
    )
    print(header)
    print("-" * len(header))
    for start, end in windows:
        dataset = make_bhic_dataset(start, end, scale=0.12)
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        times = result.timings.times
        nodes = result.n_relational
        edges = sum(len(g.edges) for g in result.graph.groups.values())
        linkage = times.get("bootstrap", 0.0) + times.get("merging", 0.0)
        print(
            f"{start}-{end:<7} {len(dataset):>8} {nodes:>8} {edges:>8} "
            f"{times.get('bootstrap', 0.0):>9.2f}s {times.get('merging', 0.0):>7.2f}s "
            f"{1000 * linkage / max(1, nodes):>8.3f} "
            f"{1000 * linkage / max(1, edges):>8.3f}"
        )
    print(
        "\nthe merging phase dominates, and linkage time per node/edge stays"
        "\nflat as the graph grows — the near-linear scalability of Table 6."
    )


if __name__ == "__main__":
    main()
