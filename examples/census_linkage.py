"""Census incorporation + expert feedback — the paper's future work, live.

Demonstrates the two extension subsystems:

1. **Census evidence** (Section 12: "investigate how census data can be
   incorporated into our ER techniques to improve linkage quality"):
   resolves the same simulated population with and without decennial
   census households and compares linkage quality — census records add
   positive evidence through PROP-A and a new negative constraint (one
   household per person per census year).
2. **Expert feedback** (Section 12: "incorporate feedback from domain
   experts on correctly and wrongly generated family trees"): confirms
   and rejects specific links and shows the entity store updating, with
   rejected links enforced against future merges.

Run:  python examples/census_linkage.py
"""

from repro import SnapsConfig, SnapsResolver
from repro.core.feedback import FeedbackSession
from repro.data.synthetic import make_ios_census_dataset, make_ios_dataset
from repro.eval import evaluate_linkage


def main() -> None:
    print("resolving the same population with and without census data ...\n")
    header = f"{'configuration':22} {'role pair':9} {'P':>7} {'R':>7} {'F*':>7}"
    print(header)
    print("-" * len(header))
    results = {}
    for maker, label in (
        (make_ios_dataset, "vital records only"),
        (make_ios_census_dataset, "with census"),
    ):
        dataset = maker(scale=0.12)
        result = SnapsResolver(SnapsConfig()).resolve(dataset)
        results[label] = (dataset, result)
        for role_pair in ("Bp-Bp", "Bp-Dp"):
            ev = evaluate_linkage(
                result.matched_pairs(role_pair),
                dataset.true_match_pairs(role_pair),
            )
            print(
                f"{label:22} {role_pair:9} {ev.precision:7.2f} "
                f"{ev.recall:7.2f} {ev.f_star:7.2f}"
            )
    print(
        "\ncensus households supply extra QID evidence (PROP-A) and a new"
        "\nlink constraint (one household per person per census), lifting"
        "\nboth precision and recall of the vital-record links."
    )

    # ------------------------------------------------------------------
    # Expert feedback on the resolved links.
    # ------------------------------------------------------------------
    print("\napplying expert feedback ...")
    dataset, result = results["vital records only"]
    session = FeedbackSession(dataset, result.entities)

    # A domain expert reviews a generated family tree and spots one wrong
    # link (simulated here with ground truth: find a within-entity record
    # pair whose person ids differ).
    wrong = None
    for entity in result.entities.entities(min_size=2):
        for a, b in entity.links:
            if dataset.record(a).person_id != dataset.record(b).person_id:
                wrong = (a, b)
                break
        if wrong:
            break
    if wrong is None:
        print("  no wrong links to reject — the resolution is already perfect")
    else:
        ra, rb = dataset.record(wrong[0]), dataset.record(wrong[1])
        print(
            f"  rejecting wrong link: {ra.get('first_name')} "
            f"{ra.get('surname')} ({ra.role.value} {ra.event_year}) ≠ "
            f"{rb.get('first_name')} {rb.get('surname')} "
            f"({rb.role.value} {rb.event_year})"
        )
        session.reject(*wrong)
        assert not session.store.same_entity(*wrong)
        checker = session.checker()
        print(
            "  the pair is now a cannot-link: "
            f"can_merge={checker.can_merge(session.store, ra, rb)}"
        )

    # The expert also confirms a link the system was too cautious to make.
    missed = None
    truth = dataset.true_match_pairs("Bp-Bp")
    predicted = result.matched_pairs("Bp-Bp")
    for pair in sorted(truth - predicted):
        from repro.core.constraints import ConstraintChecker

        a, b = dataset.record(pair[0]), dataset.record(pair[1])
        if ConstraintChecker().can_merge(session.store, a, b):
            missed = pair
            break
    if missed:
        a, b = dataset.record(missed[0]), dataset.record(missed[1])
        print(
            f"  confirming missed link: {a.get('first_name')} "
            f"{a.get('surname')} = {b.get('first_name')} {b.get('surname')}"
        )
        session.confirm(*missed)
        assert session.store.same_entity(*missed)
    print(f"  feedback session: {session.summary()}")


if __name__ == "__main__":
    main()
