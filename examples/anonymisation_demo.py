"""Graph anonymisation for public release (paper Section 9).

Shows how a sensitive certificate collection is rendered publishable
while keeping the application usable:

* names are mapped cluster-to-cluster into a public name universe, so
  string-similarity structure (and hence blocking and approximate
  search) survives;
* all years shift by one secret offset, preserving temporal distances;
* rare causes of death are generalised k-anonymously, stratified by
  gender and age band.

The demo verifies the key property: entity resolution on the anonymised
data recovers (nearly) the same linkage structure as on the original.

Run:  python examples/anonymisation_demo.py
"""

from repro import SnapsConfig, SnapsResolver, make_tiny_dataset
from repro.anonymize import anonymise_dataset
from repro.data.roles import Role
from repro.eval import evaluate_linkage


def main() -> None:
    sensitive = make_tiny_dataset(seed=3)
    anonymised, report = anonymise_dataset(sensitive, k=5, seed=11)

    print("anonymisation report:")
    print(f"  records processed:    {report.n_records}")
    print(f"  female names mapped:  {report.n_female_names_mapped}")
    print(f"  male names mapped:    {report.n_male_names_mapped}")
    print(f"  surnames mapped:      {report.n_surnames_mapped}")
    print(f"  causes generalised:   {report.n_causes_generalised}")
    print(f"  frequent causes kept: {report.n_frequent_causes}")

    print("\nbefore/after sample (deceased persons):")
    shown = 0
    for record in sensitive.records_with_role([Role.DD]):
        anon = anonymised.record(record.record_id)
        print(
            f"  {record.get('first_name')} {record.get('surname')} "
            f"({record.get('event_year')}, {record.get('cause_of_death')})"
            f"  →  {anon.get('first_name')} {anon.get('surname')} "
            f"({anon.get('event_year')}, {anon.get('cause_of_death')})"
        )
        shown += 1
        if shown == 6:
            break

    print("\nresolving both versions to compare linkage structure ...")
    resolver = SnapsResolver(SnapsConfig())
    for dataset in (sensitive, anonymised):
        result = resolver.resolve(dataset)
        ev = evaluate_linkage(
            result.matched_pairs("Bp-Bp"), dataset.true_match_pairs("Bp-Bp")
        )
        print(
            f"  {dataset.name:10}: P={ev.precision:.1f}% R={ev.recall:.1f}% "
            f"F*={ev.f_star:.1f}%"
        )
    print(
        "\nthe anonymised data resolves with comparable quality — family"
        "\nstructure and name-similarity relationships survive anonymisation,"
        "\nso the public demo behaves like the sensitive system."
    )


if __name__ == "__main__":
    main()
