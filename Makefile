# Developer entry points for the SNAPS reproduction.

.PHONY: install test verify serve-smoke prefork-smoke stream-smoke obs-smoke shard-smoke supervise-smoke chaos bench bench-full examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Fail-fast gate for CI and pre-commit: tier-1 tests, a bytecode compile
# of the whole library, and a telemetry smoke run (simulate → resolve
# with tracing → report) so observability regressions surface
# immediately.
VERIFY_TMP = /tmp/snaps-verify

# The smoke-run block executes in ONE shell with an EXIT trap so
# $(VERIFY_TMP) is removed whether the run passes or fails.
verify:
	PYTHONPATH=src python -m pytest -x -q tests/
	python -m compileall -q src
	rm -rf $(VERIFY_TMP) && mkdir -p $(VERIFY_TMP); \
	trap 'rm -rf $(VERIFY_TMP)' EXIT; \
	set -e; \
	PYTHONPATH=src python -m repro simulate --dataset tiny --out $(VERIFY_TMP)/data; \
	PYTHONPATH=src python -m repro -v resolve --data $(VERIFY_TMP)/data \
		--out $(VERIFY_TMP)/graph.json --snapshot-out $(VERIFY_TMP)/store \
		--trace --metrics-out $(VERIFY_TMP)/run.json; \
	PYTHONPATH=src python -m repro report $(VERIFY_TMP)/run.json; \
	PYTHONPATH=src python -m repro snapshot verify --store $(VERIFY_TMP)/store; \
	PYTHONPATH=src python -m repro query --snapshot $(VERIFY_TMP)/store \
		--first-name john --surname macdonald --top 3
	$(MAKE) serve-smoke
	$(MAKE) prefork-smoke
	$(MAKE) stream-smoke
	$(MAKE) shard-smoke
	$(MAKE) supervise-smoke

# Fault-tolerance gate: the fault substrate's unit tests plus the chaos
# suites — crash-resume at every checkpoint boundary must be
# byte-identical, and degraded serving must hold 200s while backends
# fail.  Runs as its own CI job so chaos regressions are named as such.
chaos:
	PYTHONPATH=src python -m pytest -q tests/test_faults.py \
		tests/test_checkpoint.py tests/test_data_validate.py \
		tests/test_chaos_pipeline.py tests/test_chaos_serve.py \
		tests/test_stream.py tests/test_supervise.py

# Boot the HTTP serving subsystem on an in-process tiny graph, hit
# /healthz, /v1/search (checked against the offline engine), a pedigree,
# and /metricz, then shut down.  See src/repro/serve/smoke.py.
serve-smoke:
	PYTHONPATH=src python -m repro.serve.smoke

# Pre-fork fleet gate: boot 4 workers over one memory-mapped snapshot,
# SIGKILL a worker mid-traffic (supervised restart, zero non-2xx), then
# one zero-downtime reload onto a second snapshot (rolling rotation,
# zero non-2xx).  See src/repro/serve/prefork_smoke.py.
prefork-smoke:
	PYTHONPATH=src python -m repro.serve.prefork_smoke

# Spool three micro-batches through a live replica: every batch must
# ingest, promote with zero downtime, and show up in the stream.*
# gauges/prom exposition.  Artefacts land in /tmp/snaps-stream-smoke
# for CI upload.  See src/repro/stream/smoke.py.
stream-smoke:
	PYTHONPATH=src python -m repro.stream.smoke

# Observability gate: a multi-worker resolve with durable tracing and
# the sampling profiler on must stay byte-identical to serial, leave a
# walkable single-tree trace file and a checkable report/prom rendering
# (scripts/check_obs.py), and the bench regression tracker must build a
# baseline and pass --check across two quick bench runs.  Artefacts stay
# in $(OBS_TMP) for CI upload; the directory is recreated per run.
OBS_TMP = /tmp/snaps-obs-smoke

obs-smoke:
	rm -rf $(OBS_TMP) && mkdir -p $(OBS_TMP); \
	set -e; \
	PYTHONPATH=src python -m repro simulate --dataset tiny --out $(OBS_TMP)/data; \
	SNAPS_OBS=durable PYTHONPATH=src python -m repro resolve \
		--data $(OBS_TMP)/data --workers 2 --out $(OBS_TMP)/graph.json \
		--trace-out $(OBS_TMP)/trace.jsonl --metrics-out $(OBS_TMP)/run.json \
		--profile --profile-out $(OBS_TMP)/profile.txt; \
	PYTHONPATH=src python -m repro resolve --data $(OBS_TMP)/data \
		--workers 0 --out $(OBS_TMP)/serial.json; \
	cmp $(OBS_TMP)/graph.json $(OBS_TMP)/serial.json; \
	PYTHONPATH=src python scripts/check_obs.py $(OBS_TMP)/trace.jsonl \
		$(OBS_TMP)/run.json $(OBS_TMP)/profile.txt; \
	PYTHONPATH=src python -m repro report $(OBS_TMP)/run.json --format prom > /dev/null; \
	REPRO_BENCH_SCALE=0.05 PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick; \
	PYTHONPATH=src python -m repro bench-history --history $(OBS_TMP)/history.jsonl; \
	REPRO_BENCH_SCALE=0.05 PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --quick; \
	PYTHONPATH=src python -m repro bench-history --history $(OBS_TMP)/history.jsonl --check

# Sharded-resolution gate: a 2-shard resolve must land on the same
# content-addressed snapshot as serial with every payload byte-identical
# (cmp), carry an intact shards/ sidecar, and a single-certificate delta
# ingest against a 4-shard snapshot must re-resolve exactly one dirty
# shard.  Artefacts (both stores incl. merge manifests) stay in
# $(SHARD_TMP) for CI upload; the directory is recreated per run.
SHARD_TMP = /tmp/snaps-shard-smoke

shard-smoke:
	rm -rf $(SHARD_TMP) && mkdir -p $(SHARD_TMP); \
	set -e; \
	PYTHONPATH=src python -m repro simulate --dataset tiny --out $(SHARD_TMP)/data; \
	PYTHONPATH=src python -m repro resolve --data $(SHARD_TMP)/data \
		--workers 0 --out $(SHARD_TMP)/serial.json --snapshot-out $(SHARD_TMP)/store-serial; \
	PYTHONPATH=src python -m repro resolve --data $(SHARD_TMP)/data \
		--shards 2 --out $(SHARD_TMP)/sharded.json --snapshot-out $(SHARD_TMP)/store-sharded; \
	cmp $(SHARD_TMP)/serial.json $(SHARD_TMP)/sharded.json; \
	ID=$$(cat $(SHARD_TMP)/store-serial/HEAD); \
	test "$$ID" = "$$(cat $(SHARD_TMP)/store-sharded/HEAD)"; \
	for f in clusters.json graph.json keyword_index.npz simindex.npz \
			dataset.records.csv dataset.certs.csv; do \
		cmp $(SHARD_TMP)/store-serial/snapshots/$$ID/$$f \
			$(SHARD_TMP)/store-sharded/snapshots/$$ID/$$f; \
	done; \
	test -f $(SHARD_TMP)/store-sharded/snapshots/$$ID/shards/merge-manifest.json; \
	PYTHONPATH=src python -m repro snapshot verify --store $(SHARD_TMP)/store-sharded; \
	PYTHONPATH=src python -m repro snapshot inspect --store $(SHARD_TMP)/store-sharded | grep -q "shards:"; \
	PYTHONPATH=src python -c "from repro.data.loader import save_dataset_csv; \
		from repro.data.records import Dataset; \
		from repro.data.synthetic import make_tiny_dataset, split_stream; \
		base, deltas = split_stream(make_tiny_dataset(seed=3), n_batches=3); \
		save_dataset_csv(base, '$(SHARD_TMP)/base'); \
		cert = next(iter(deltas[0].certificates.values())); \
		small = Dataset('delta', [deltas[0].records[r] for r in cert.member_record_ids()], [cert]); \
		save_dataset_csv(small, '$(SHARD_TMP)/delta')"; \
	PYTHONPATH=src python -m repro resolve --data $(SHARD_TMP)/base \
		--shards 4 --out $(SHARD_TMP)/base.json --snapshot-out $(SHARD_TMP)/store-ingest; \
	PYTHONPATH=src python -m repro snapshot ingest --store $(SHARD_TMP)/store-ingest \
		--data $(SHARD_TMP)/delta | tee $(SHARD_TMP)/ingest.out; \
	grep -q "re-resolved 1/4 dirty shard" $(SHARD_TMP)/ingest.out; \
	PYTHONPATH=src python -m repro snapshot verify --store $(SHARD_TMP)/store-ingest

# Supervised-execution gate: a worker killed (or hung) mid-resolve must
# recover to byte-identical output with the restart counted in the run
# report; a poison task must leave a quarantine artifact and an
# actionable error; injected ENOSPC during snapshot commit must abort
# with a hint and leave no partial snapshot.  SNAPS_OVERSUBSCRIBE lifts
# the pool-size CPU clamp so the real multi-worker pool runs even on
# 1-CPU CI boxes.  Artefacts stay in $(SUPERVISE_TMP) for CI upload.
SUPERVISE_TMP = /tmp/snaps-supervise-smoke

supervise-smoke:
	rm -rf $(SUPERVISE_TMP) && mkdir -p $(SUPERVISE_TMP); \
	set -e; \
	PYTHONPATH=src python -m repro simulate --dataset tiny --out $(SUPERVISE_TMP)/data; \
	PYTHONPATH=src python -m repro resolve --data $(SUPERVISE_TMP)/data \
		--workers 0 --out $(SUPERVISE_TMP)/serial.json; \
	SNAPS_OVERSUBSCRIBE=1 SNAPS_FAULTS='supervise.task.score.t0.a0:worker_crash' \
		PYTHONPATH=src python -m repro resolve --data $(SUPERVISE_TMP)/data \
		--workers 2 --out $(SUPERVISE_TMP)/crash.json \
		--metrics-out $(SUPERVISE_TMP)/crash-run.json; \
	cmp $(SUPERVISE_TMP)/serial.json $(SUPERVISE_TMP)/crash.json; \
	grep -q '"supervise.restarts": 1' $(SUPERVISE_TMP)/crash-run.json; \
	SNAPS_OVERSUBSCRIBE=1 SNAPS_FAULTS='supervise.task.score.t0.a0:hang:latency_s=30' \
		PYTHONPATH=src python -m repro resolve --data $(SUPERVISE_TMP)/data \
		--workers 2 --task-timeout 1 --out $(SUPERVISE_TMP)/hang.json \
		--metrics-out $(SUPERVISE_TMP)/hang-run.json; \
	cmp $(SUPERVISE_TMP)/serial.json $(SUPERVISE_TMP)/hang.json; \
	grep -q '"supervise.hung_tasks": 1' $(SUPERVISE_TMP)/hang-run.json; \
	SNAPS_OVERSUBSCRIBE=1 SNAPS_FAULTS='supervise.task.score.t0.a*:error:times=none' \
		PYTHONPATH=src python -m repro resolve --data $(SUPERVISE_TMP)/data \
		--workers 2 --task-retries 0 --quarantine-dir $(SUPERVISE_TMP)/quarantine \
		--out $(SUPERVISE_TMP)/poison.json 2>$(SUPERVISE_TMP)/poison.err \
		&& exit 1 || test $$? -eq 2; \
	grep -q "quarantined" $(SUPERVISE_TMP)/poison.err; \
	test -s $(SUPERVISE_TMP)/quarantine/tasks.jsonl; \
	SNAPS_FAULTS='store.save.payloads:enospc' \
		PYTHONPATH=src python -m repro resolve --data $(SUPERVISE_TMP)/data \
		--snapshot-out $(SUPERVISE_TMP)/store 2>$(SUPERVISE_TMP)/enospc.err \
		&& exit 1 || test $$? -eq 2; \
	grep -q "free disk space" $(SUPERVISE_TMP)/enospc.err; \
	test ! -d $(SUPERVISE_TMP)/store/snapshots || test -z "$$(ls -A $(SUPERVISE_TMP)/store/snapshots)"

# The full evaluation harness: one bench per paper table/figure plus the
# design-choice ablations.  REPRO_BENCH_SCALE=1.0 approximates paper-sized
# datasets (slow); the default 0.25 finishes in minutes.
bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/anonymisation_demo.py
	python examples/census_linkage.py
	python examples/pedigree_search.py
	python examples/scalability_sweep.py
	python examples/baseline_comparison.py

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
