# Developer entry points for the SNAPS reproduction.

.PHONY: install test bench bench-full examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# The full evaluation harness: one bench per paper table/figure plus the
# design-choice ablations.  REPRO_BENCH_SCALE=1.0 approximates paper-sized
# datasets (slow); the default 0.25 finishes in minutes.
bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/anonymisation_demo.py
	python examples/census_linkage.py
	python examples/pedigree_search.py
	python examples/scalability_sweep.py
	python examples/baseline_comparison.py

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
