#!/usr/bin/env python
"""Validate the artefacts of an instrumented resolve (the obs-smoke gate).

Usage::

    python scripts/check_obs.py TRACE.jsonl RUN.json [PROFILE.txt]

Checks, exiting non-zero with a message on the first failure:

* the streamed trace file parses (``read_trace_jsonl``), carries exactly
  one trace id, and rebuilds to a single ``resolve`` root containing the
  pipeline phases;
* worker chunk spans (``worker.*``) are descendants of the resolve root
  — the cross-process propagation acceptance criterion;
* the run report carries merged worker counters, interpolated histogram
  quantiles, and (when present) a sampling-profiler block;
* the report's metrics render to Prometheus text that passes the repo's
  own exposition checker;
* the collapsed-stack profile file, if given, is well-formed.

Run via ``make obs-smoke``; CI uploads the checked artefacts.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import check_exposition, read_trace_jsonl, render_prometheus


def fail(message: str) -> "NoReturn":  # noqa: F821 - py3.11 has typing.NoReturn
    print(f"check_obs: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_trace(path: Path) -> int:
    trace = read_trace_jsonl(path)
    if [s.name for s in trace.roots] != ["resolve"]:
        fail(f"{path}: expected single resolve root, got "
             f"{[s.name for s in trace.roots]}")
    if not trace.trace_id:
        fail(f"{path}: events carry no trace id")
    phases = [s.name for s in trace.roots[0].children]
    for phase in ("blocking", "graph", "bootstrap", "merge", "refine"):
        if phase not in phases:
            fail(f"{path}: resolve root is missing the {phase} phase")
    spans = list(trace.walk())
    workers = [s for _, s in spans if s.name.startswith("worker.")]
    if not workers:
        fail(f"{path}: no worker chunk spans — was --workers used?")
    ids = {s.span_id for _, s in spans}
    for span in workers:
        if span.parent_id not in ids:
            fail(f"{path}: worker span {span.span_id} has dangling parent "
                 f"{span.parent_id}")
        if not span.attrs or "pid" not in span.attrs:
            fail(f"{path}: worker span {span.span_id} lacks a pid attribute")
    print(f"check_obs: trace ok — {len(spans)} spans, "
          f"{len(workers)} worker chunks, trace_id {trace.trace_id}")
    return len(workers)


def check_report(path: Path, expect_profile: bool) -> None:
    report = json.loads(path.read_text(encoding="utf-8"))
    counters = report.get("metrics", {}).get("counters", {})
    for name in ("parallel.worker.pairs_in", "parallel.worker.pairs_scored"):
        if counters.get(name, 0) <= 0:
            fail(f"{path}: merged worker counter {name} missing or zero")
    histograms = report.get("metrics", {}).get("histograms", {})
    chunk = histograms.get("parallel.worker.chunk_seconds")
    if not chunk or chunk.get("count", 0) <= 0:
        fail(f"{path}: parallel.worker.chunk_seconds histogram missing")
    if chunk.get("p95") is None:
        fail(f"{path}: histogram is missing interpolated quantiles")
    if expect_profile:
        profile = report.get("profile")
        if not profile or "samples" not in profile:
            fail(f"{path}: --profile was requested but no profile block")
    text = render_prometheus(report["metrics"])
    try:
        families = check_exposition(text)
    except ValueError as error:
        fail(f"{path}: prom rendering is malformed: {error}")
    print(f"check_obs: report ok — {len(counters)} counters, "
          f"{len(families)} prom families")


def check_profile(path: Path) -> None:
    lines = path.read_text(encoding="utf-8").splitlines()
    for n, line in enumerate(lines, start=1):
        stack, _, count = line.rpartition(" ")
        if not stack or not count.isdigit():
            fail(f"{path}:{n}: malformed collapsed-stack line: {line!r}")
    print(f"check_obs: profile ok — {len(lines)} unique stacks")


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    trace_path, report_path = Path(argv[0]), Path(argv[1])
    profile_path = Path(argv[2]) if len(argv) == 3 else None
    check_trace(trace_path)
    check_report(report_path, expect_profile=profile_path is not None)
    if profile_path is not None:
        check_profile(profile_path)
    print("check_obs: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
