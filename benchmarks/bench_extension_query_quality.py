"""Extension — ranked-retrieval quality under query misspellings.

The paper measures query *latency* (Table 7) but not retrieval quality;
a production adopter needs both.  This bench samples indexed people,
corrupts the query names with 0–2 character edits, and reports hit-rate@1
and hit-rate@10 (is the true person the top result / among the top 10?)
per corruption level — quantifying how much the approximate-matching
machinery (similarity-aware index, Section 6) actually buys.
"""

from __future__ import annotations

from common import emit, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.pedigree import build_pedigree_graph
from repro.query import Query, QueryEngine
from repro.utils.rng import make_rng


def _corrupt(value: str, edits: int, rng) -> str:
    for _ in range(edits):
        if len(value) < 3:
            break
        pos = rng.randrange(1, len(value) - 1)
        kind = rng.choice(("delete", "substitute", "transpose"))
        if kind == "delete":
            value = value[:pos] + value[pos + 1 :]
        elif kind == "substitute":
            value = value[:pos] + rng.choice("abcdefghijklmnopqrstuvwxyz") + value[pos + 1 :]
        else:
            value = value[:pos] + value[pos + 1] + value[pos] + value[pos + 2 :]
    return value


def test_extension_query_quality(benchmark):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(graph)
    rng = make_rng(41)
    named = [
        e for e in graph
        if e.first("first_name") and e.first("surname") and len(e.record_ids) >= 2
    ]
    targets = [named[rng.randrange(len(named))] for _ in range(120)]

    def run():
        rows = []
        rates = {}
        for edits in (0, 1, 2):
            hit1 = hit10 = 0
            for target in targets:
                query = Query(
                    first_name=_corrupt(target.first("first_name"), edits, rng),
                    surname=_corrupt(target.first("surname"), edits, rng),
                )
                hits = engine.search(query, top_m=10)
                ids = [h.entity.entity_id for h in hits]
                if ids and ids[0] == target.entity_id:
                    hit1 += 1
                if target.entity_id in ids:
                    hit10 += 1
            n = len(targets)
            rows.append([
                edits, f"{100 * hit1 / n:.1f}%", f"{100 * hit10 / n:.1f}%",
            ])
            rates[edits] = (hit1 / n, hit10 / n)
        return rows, rates

    rows, rates = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_query_quality",
        format_table(
            f"Extension — retrieval quality vs misspelling severity "
            f"({len(targets)} queries)",
            ["edits per name", "hit-rate@1", "hit-rate@10"],
            rows,
        ),
    )
    # Clean queries must retrieve nearly always; quality degrades
    # monotonically-ish with corruption but approximate matching keeps
    # heavily misspelled queries useful.
    assert rates[0][1] > 0.9
    assert rates[0][1] >= rates[2][1]
    assert rates[2][1] > 0.4
