"""Fault recovery — what checkpoints and degraded serving buy.

Two comparisons, both on the IOS stand-in:

1. **Crash-resume**: the offline pipeline dies right after the
   ``merging`` phase committed its checkpoint.  "Cold" recovery re-runs
   the whole resolve from scratch; "resume" (``repro resolve --resume``)
   restarts from the checkpoint and re-runs only what's left.  The
   resumed pedigree graph must be byte-identical to the uninterrupted
   one — speed means nothing if the output drifts.

2. **Degraded serving**: with the search backend failing hard (injected
   ``query.search`` faults), the serving app answers from its stale
   cache instead of erroring.  Compares healthy search latency against
   stale-hit latency and counts how many of the degraded requests still
   produced a 200.

Emits the text table to ``benchmarks/results/`` plus a
machine-readable ``bench_fault_recovery.metrics.json``.
"""

from __future__ import annotations

import json
import time

from common import emit, emit_report, format_table, ios_dataset, telemetry
from repro.core import SnapsConfig, SnapsResolver
from repro.core.checkpoint import ResolveCheckpointer
from repro.faults import InjectedFault, injected
from repro.pedigree import build_pedigree_graph, save_pedigree_graph
from repro.serve import ServeConfig, ServingApp

CRASH_PHASE = "merging"
N_DEGRADED_REQUESTS = 50


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _search_body(graph):
    entity = next(
        e for e in graph if e.first("first_name") and e.first("surname")
    )
    return json.dumps({
        "first_name": entity.first("first_name"),
        "surname": entity.first("surname"),
    }).encode()


def test_fault_recovery(benchmark, tmp_path):
    dataset = ios_dataset()
    config = SnapsConfig()
    trace, metrics = telemetry()

    def run():
        timings = {}

        # Uninterrupted baseline (also the byte-identity reference).
        result, timings["resolve_cold"] = _timed(
            lambda: SnapsResolver(config).resolve(dataset)
        )
        graph = build_pedigree_graph(dataset, result.entities)
        clean_path = save_pedigree_graph(graph, tmp_path / "clean.graph.json")

        # Crash right after CRASH_PHASE commits its checkpoint.
        ckdir = tmp_path / "ck"
        checkpoint = ResolveCheckpointer.begin(ckdir, dataset, config)
        with injected(f"checkpoint.saved.{CRASH_PHASE}:error:times=1"):
            try:
                SnapsResolver(config).resolve(dataset, checkpoint=checkpoint)
                raise AssertionError("injected crash did not fire")
            except InjectedFault:
                pass

        def resume():
            ckpt, ck_dataset, ck_config = ResolveCheckpointer.resume(ckdir)
            resumed = SnapsResolver(ck_config).resolve(
                ck_dataset, checkpoint=ckpt
            )
            return ck_dataset, resumed

        (ck_dataset, resumed), timings["resolve_resumed"] = _timed(resume)
        resumed_path = save_pedigree_graph(
            build_pedigree_graph(ck_dataset, resumed.entities),
            tmp_path / "resumed.graph.json",
        )
        assert resumed_path.read_bytes() == clean_path.read_bytes(), (
            "resumed run diverged from the uninterrupted one"
        )

        # Degraded serving: stale hits vs healthy backend latency.
        now = [0.0]
        app = ServingApp(
            graph,
            ServeConfig(cache_ttl_s=60.0, breaker_threshold=3),
            metrics=metrics,
            clock=lambda: now[0],
        )
        body = _search_body(graph)
        healthy, timings["serve_healthy"] = _timed(
            lambda: app.handle("POST", "/v1/search", body=body)
        )
        assert healthy.status == 200
        now[0] += 61.0  # cache entry expires but stays recoverable
        statuses = []
        with injected("query.search:error:times=none"):
            start = time.perf_counter()
            for _ in range(N_DEGRADED_REQUESTS):
                statuses.append(
                    app.handle("POST", "/v1/search", body=body).status
                )
            timings["serve_stale"] = (
                time.perf_counter() - start
            ) / N_DEGRADED_REQUESTS
        return timings, statuses

    timings, statuses = benchmark.pedantic(run, rounds=1, iterations=1)

    resume_speedup = timings["resolve_cold"] / max(
        timings["resolve_resumed"], 1e-9
    )
    stale_speedup = timings["serve_healthy"] / max(timings["serve_stale"], 1e-9)
    ok_rate = statuses.count(200) / len(statuses)
    rows = [
        ["resolve", "cold re-run after crash",
         f"{1000 * timings['resolve_cold']:.1f}", ""],
        ["resolve", f"resume past {CRASH_PHASE} checkpoint",
         f"{1000 * timings['resolve_resumed']:.1f}", f"{resume_speedup:.1f}x"],
        ["serve", "healthy search (cold cache)",
         f"{1000 * timings['serve_healthy']:.2f}", ""],
        ["serve", f"stale hit, backend down ({100 * ok_rate:.0f}% 200s)",
         f"{1000 * timings['serve_stale']:.2f}", f"{stale_speedup:.1f}x"],
    ]
    emit(
        "bench_fault_recovery",
        format_table(
            "Fault recovery (IOS stand-in)",
            ["phase", "variant", "time ms", "speedup"],
            rows,
        ),
    )
    emit_report(
        "bench_fault_recovery",
        trace=trace,
        metrics=metrics,
        meta={
            "crash_phase": CRASH_PHASE,
            "n_degraded_requests": N_DEGRADED_REQUESTS,
            "timings_ms": {k: round(1000 * v, 3) for k, v in timings.items()},
            "resume_speedup": round(resume_speedup, 3),
            "stale_speedup": round(stale_speedup, 3),
            "degraded_ok_rate": ok_rate,
        },
    )
    assert ok_rate == 1.0, "degraded mode must not produce 5xx for warm keys"
    assert timings["resolve_resumed"] < timings["resolve_cold"], (
        "resume should beat a cold re-run"
    )
