"""Ablation — blocking strategy trade-offs (DESIGN.md design choice).

Compares standard key blocking, phonetic blocking, MinHash-LSH, and the
composite LSH+phonetic blocker SNAPS uses, on candidate-pair count
(cost), pair-completeness against ground truth (recall ceiling), and
blocking time.
"""

from __future__ import annotations

import time

from common import emit, format_table, ios_dataset
from repro.blocking import (
    LshBlocker,
    PhoneticBlocker,
    SortedNeighbourhoodBlocker,
    StandardBlocker,
)
from repro.blocking.base import block_key_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker


def test_ablation_blocking(benchmark):
    dataset = ios_dataset()
    truth = dataset.true_match_pairs("Bp-Bp") | dataset.true_match_pairs("Bp-Dp")
    records = list(dataset)
    blockers = [
        ("standard (f1+sur4)", StandardBlocker()),
        ("sorted-neighbourhood", SortedNeighbourhoodBlocker(window=10).fit(records)),
        ("phonetic composite", PhoneticNameKeyBlocker()),
        ("phonetic per-attr", PhoneticBlocker()),
        ("minhash-lsh", LshBlocker()),
        ("lsh+phonetic", CompositeBlocker([LshBlocker(), PhoneticNameKeyBlocker()])),
    ]

    def run():
        rows = []
        stats = {}
        for label, blocker in blockers:
            start = time.perf_counter()
            pairs = set(block_key_pairs(records, blocker))
            elapsed = time.perf_counter() - start
            completeness = len(pairs & truth) / max(1, len(truth))
            rows.append([
                label, len(pairs), f"{100 * completeness:.1f}%", f"{elapsed:.2f}",
            ])
            stats[label] = (len(pairs), completeness)
        return rows, stats

    rows, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_blocking",
        format_table(
            "Ablation — blocking strategies (IOS, truth = Bp-Bp ∪ Bp-Dp)",
            ["blocker", "candidate pairs", "pair completeness", "time (s)"],
            rows,
        ),
    )
    # The composite blocker must dominate each member on completeness.
    composite = stats["lsh+phonetic"][1]
    assert composite >= stats["minhash-lsh"][1]
    assert composite >= stats["phonetic composite"][1]
    # Standard blocking trades recall for far fewer pairs.
    assert stats["standard (f1+sur4)"][0] < stats["lsh+phonetic"][0]
