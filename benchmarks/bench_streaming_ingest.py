"""Streaming ingest — zero-downtime promotion under live search load.

The deployment the paper's incremental path (Section 6.3) implies:
certificate micro-batches keep arriving while genealogists keep
searching.  This bench measures the sustained ingest rate of
``repro.stream`` (records/sec through validate → ingest → commit →
promote) and — the actual point — verifies the serving replica never
degrades while its snapshot is swapped underneath the traffic: a
concurrent load thread hammers ``/v1/search`` throughout and every
response must be 2xx with p99 staying flat against a no-ingest
baseline, across at least three back-to-back promotions.

Ingest resolution runs in worker processes (``workers=2``), so the
serving threads are not starved of the GIL by re-resolution CPU — the
same separation a production deployment gets from running the ingester
in its own process.
"""

from __future__ import annotations

import threading
import time

from common import emit, emit_report, format_table
from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_tiny_dataset, split_stream
from repro.serve import ServeClient, ServeConfig, ServingApp, make_server
from repro.store import SnapshotStore
from repro.stream import StreamConfig, StreamPipeline, write_batch
from repro.utils.rng import make_rng

N_BATCHES = 4
BASELINE_SECONDS = 2.0
# Small-sample p99 on shared hardware is noisy; the flatness assertion
# uses the 1.5x target with an absolute floor so a 3 ms -> 6 ms blip on
# a busy CI box does not fail a bench whose SLO is ~500 ms.
P99_RATIO_LIMIT = 1.5
P99_FLOOR_S = 0.25


def _build_parts(tmp_path):
    dataset = make_tiny_dataset(seed=3)
    base, batches = split_stream(dataset, N_BATCHES)
    store = SnapshotStore(tmp_path / "store")
    store.save(SnapsResolver(SnapsConfig()).resolve(base))
    return store, base, batches


def _queries(graph, n=16, seed=31):
    rng = make_rng(seed)
    named = [e for e in graph if e.first("first_name") and e.first("surname")]
    return [
        (e.first("first_name"), e.first("surname"))
        for e in (rng.choice(named) for _ in range(n))
    ]


class _LoadThread:
    """Closed-loop search traffic; records (latency, ok) per request."""

    def __init__(self, base_url, queries, seed=47):
        self.client = ServeClient(base_url)
        self.queries = queries
        self.rng = make_rng(seed)
        self.latencies: list[float] = []
        self.failures: list[str] = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            first, surname = self.queries[
                self.rng.randrange(len(self.queries))
            ]
            start = time.perf_counter()
            try:
                self.client.search(first, surname, top=5)
            except Exception as exc:  # any non-2xx or transport error
                self.failures.append(f"{type(exc).__name__}: {exc}")
            self.latencies.append(time.perf_counter() - start)

    def start(self):
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        self._thread.join(timeout=10)


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def test_streaming_ingest(benchmark, tmp_path):
    store, base, batches = _build_parts(tmp_path)
    loaded = store.load(artifacts=("graph", "indexes"))
    app = ServingApp(
        loaded.graph,
        ServeConfig(max_concurrency=8),
        keyword_index=loaded.keyword_index,
        sim_index=loaded.sim_index,
        store=store,
        manifest=loaded.manifest,
    )
    server = make_server(app, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base_url = f"http://{host}:{port}"
    queries = _queries(loaded.graph)
    delta_records = sum(len(b.records) for b in batches)

    try:
        # Phase 1: no-ingest baseline of the load loop.
        baseline = _LoadThread(base_url, queries, seed=47).start()
        time.sleep(BASELINE_SECONDS)
        baseline.stop()

        # Phase 2: same load while the pipeline drains the spool.
        spool = tmp_path / "spool"
        for batch in batches:
            write_batch(spool, batch.name, batch)
        pipeline = StreamPipeline(
            store,
            StreamConfig(
                spool=spool,
                serve_url=base_url,
                poll_interval_s=0.05,
                coalesce=False,  # every batch promotes: N_BATCHES swaps
                drain=True,
                workers=2,
            ),
        )
        load = _LoadThread(base_url, queries, seed=53).start()

        def drain():
            start = time.perf_counter()
            ingested = pipeline.run()
            return ingested, time.perf_counter() - start

        ingested, wall = benchmark.pedantic(drain, rounds=1, iterations=1)
        load.stop()
    finally:
        server.shutdown()
        server.server_close()

    promotions = pipeline.metrics.counter_value("stream.promotions")
    base_p99 = _percentile(baseline.latencies, 0.99)
    stream_p99 = _percentile(load.latencies, 0.99)
    records_per_s = delta_records / wall
    rows = [
        [
            "baseline (no ingest)",
            len(baseline.latencies),
            f"{1000 * _percentile(baseline.latencies, 0.50):.2f}",
            f"{1000 * base_p99:.2f}",
            "-",
        ],
        [
            "during streaming ingest",
            len(load.latencies),
            f"{1000 * _percentile(load.latencies, 0.50):.2f}",
            f"{1000 * stream_p99:.2f}",
            f"{stream_p99 / max(base_p99, 1e-9):.2f}x",
        ],
    ]
    emit(
        "streaming_ingest",
        format_table(
            f"Streaming ingest — {ingested} batches ({delta_records} records) "
            f"in {wall:.1f}s = {records_per_s:.0f} records/s sustained, "
            f"{promotions} zero-downtime promotions, "
            f"{len(load.failures)} failed requests",
            ["serving traffic", "requests", "p50 ms", "p99 ms", "p99 vs base"],
            rows,
        ),
    )
    emit_report(
        "streaming_ingest",
        metrics=pipeline.metrics,
        meta={
            "records_per_s": round(records_per_s, 1),
            "promotions": promotions,
            "ingest_wall_s": round(wall, 2),
            "baseline_p99_ms": round(1000 * base_p99, 2),
            "streaming_p99_ms": round(1000 * stream_p99, 2),
            "load_requests": len(load.latencies),
            "load_failures": len(load.failures),
        },
    )

    # Zero downtime: every request during >= 3 promotions answered 2xx.
    assert ingested == N_BATCHES
    assert promotions >= 3, f"only {promotions} promotions"
    assert not load.failures, f"non-2xx during ingest: {load.failures[:5]}"
    assert len(load.latencies) > 50, "load thread starved"
    assert not pipeline.journal.unpromoted()
    # Flat p99: within the 1.5x target (absolute floor absorbs noise on
    # a millisecond-scale baseline).
    assert stream_p99 < max(P99_RATIO_LIMIT * base_p99, P99_FLOOR_S), (
        f"p99 degraded {base_p99 * 1000:.1f}ms -> {stream_p99 * 1000:.1f}ms"
    )
    # The replica really moved: it now serves the terminal snapshot.
    lineage = pipeline.journal.snapshot_lineage()
    assert app.manifest is not None and app.manifest.snapshot_id == lineage[-1]
