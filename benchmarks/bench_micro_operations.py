"""Micro-benchmarks of the hot inner operations.

Not a paper table — these quantify the per-operation costs that the
scalability model of Table 6 is built from: one name comparison, one
MinHash signature, one blocking-key computation, one query, one pedigree
extraction.  pytest-benchmark's statistics (many rounds) apply here,
unlike the one-shot pipeline benches.
"""

from __future__ import annotations

from common import ios_dataset
from repro.blocking.lsh import LshBlocker
from repro.blocking.minhash import MinHasher
from repro.core import SnapsConfig, SnapsResolver
from repro.core.scoring import PairScorer
from repro.pedigree import build_pedigree_graph, extract_pedigree
from repro.query import Query, QueryEngine
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_distance
from repro.similarity.phonetic import soundex


def _name_strings(n: int = 512) -> list[str]:
    """Distinct lowercased name phrases from the IOS stand-in."""
    values: list[str] = []
    seen: set[str] = set()
    for record in ios_dataset():
        parts = [record.get(a) or "" for a in ("first_name", "surname")]
        joined = " ".join(p for p in parts if p).strip().lower()
        if joined and joined not in seen:
            seen.add(joined)
            values.append(joined)
            if len(values) >= n:
                break
    return values


def test_micro_jaro_winkler(benchmark):
    result = benchmark(jaro_winkler_similarity, "catherine", "katherine")
    assert 0.0 < result <= 1.0


def test_micro_levenshtein(benchmark):
    assert benchmark(levenshtein_distance, "macdonald", "mcdonnell") > 0


def test_micro_soundex(benchmark):
    assert benchmark(soundex, "macdonald") == soundex("macdonald")


def test_micro_lsh_block_keys(benchmark):
    dataset = ios_dataset()
    blocker = LshBlocker()
    record = next(iter(dataset))

    def keys():
        blocker._signature_cache.clear()  # measure the uncached path
        return blocker.block_keys(record)

    assert len(benchmark(keys)) == blocker.n_bands


def test_micro_minhash_scalar_batch(benchmark):
    """One scalar ``signature()`` call per name — the pre-vectorised path."""
    hasher = MinHasher()
    values = _name_strings()
    signatures = benchmark(lambda: [hasher.signature(v) for v in values])
    assert len(signatures) == len(values)


def test_micro_minhash_vectorized_batch(benchmark):
    """The same names through one ``signature_matrix()`` pass."""
    hasher = MinHasher()
    values = _name_strings()
    matrix = benchmark(hasher.signature_matrix, values)
    assert matrix.shape == (len(values), hasher.n_hashes)
    # Parity is pinned by tests/test_parallel_parity.py; spot-check here
    # so the two micro benches provably measure the same computation.
    assert tuple(matrix[0].tolist()) == hasher.signature(values[0])


def _scoring_pairs(n: int = 256) -> list[tuple[str, str]]:
    names = _name_strings(2 * n)
    return list(zip(names[0::2], names[1::2]))


def test_micro_sim_cache_cold(benchmark):
    """Comparator cost when every value pair misses the sim cache."""
    scorer = PairScorer(ios_dataset(), SnapsConfig())
    pairs = _scoring_pairs()

    def cold():
        scorer._sim_cache.clear()
        return [scorer.value_similarity("surname", a, b) for a, b in pairs]

    assert len(benchmark(cold)) == len(pairs)


def test_micro_sim_cache_seeded(benchmark):
    """The same pairs served from a precomputed sim cache (parallel path)."""
    scorer = PairScorer(ios_dataset(), SnapsConfig())
    pairs = _scoring_pairs()
    for a, b in pairs:  # warm exactly the entries the precompute would seed
        scorer.value_similarity("surname", a, b)
    scores = benchmark(
        lambda: [scorer.value_similarity("surname", a, b) for a, b in pairs]
    )
    assert len(scores) == len(pairs)


def test_micro_query(benchmark):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(graph)
    query = Query(first_name="mary", surname="macdonald")
    hits = benchmark(engine.search, query, 10)
    assert isinstance(hits, list)


def test_micro_pedigree_extraction(benchmark):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    root = next(e for e in graph if graph.children(e.entity_id))
    pedigree = benchmark(extract_pedigree, graph, root.entity_id, 2)
    assert len(pedigree) >= 1
