"""Micro-benchmarks of the hot inner operations.

Not a paper table — these quantify the per-operation costs that the
scalability model of Table 6 is built from: one name comparison, one
MinHash signature, one blocking-key computation, one query, one pedigree
extraction.  pytest-benchmark's statistics (many rounds) apply here,
unlike the one-shot pipeline benches.
"""

from __future__ import annotations

from common import ios_dataset
from repro.blocking.lsh import LshBlocker
from repro.core import SnapsConfig, SnapsResolver
from repro.pedigree import build_pedigree_graph, extract_pedigree
from repro.query import Query, QueryEngine
from repro.similarity.jaro import jaro_winkler_similarity
from repro.similarity.levenshtein import levenshtein_distance
from repro.similarity.phonetic import soundex


def test_micro_jaro_winkler(benchmark):
    result = benchmark(jaro_winkler_similarity, "catherine", "katherine")
    assert 0.0 < result <= 1.0


def test_micro_levenshtein(benchmark):
    assert benchmark(levenshtein_distance, "macdonald", "mcdonnell") > 0


def test_micro_soundex(benchmark):
    assert benchmark(soundex, "macdonald") == soundex("macdonald")


def test_micro_lsh_block_keys(benchmark):
    dataset = ios_dataset()
    blocker = LshBlocker()
    record = next(iter(dataset))

    def keys():
        blocker._signature_cache.clear()  # measure the uncached path
        return blocker.block_keys(record)

    assert len(benchmark(keys)) == blocker.n_bands


def test_micro_query(benchmark):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    engine = QueryEngine(graph)
    query = Query(first_name="mary", surname="macdonald")
    hits = benchmark(engine.search, query, 10)
    assert isinstance(hits, list)


def test_micro_pedigree_extraction(benchmark):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    root = next(e for e in graph if graph.children(e.entity_id))
    pedigree = benchmark(extract_pedigree, graph, root.entity_id, 2)
    assert len(pedigree) >= 1
