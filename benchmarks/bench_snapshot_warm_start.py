"""Snapshot warm start — what persistence buys at boot and at ingest.

Two comparisons, both on the IOS stand-in:

1. **Boot**: cold boot re-runs index construction (keyword index K +
   similarity-aware index S) from the pedigree graph, exactly what
   ``repro serve --graph`` does; warm boot deserialises the same indexes
   from a snapshot directory (``repro serve --snapshot``).  The paper's
   offline/online split assumes the offline output is *kept*; this
   measures the keep.

2. **Ingest**: a delta batch of certificates arrives.  Both variants
   produce the same deliverable — an up-to-date snapshot: "full"
   re-resolves base+delta from scratch then saves; incremental ingest
   (``repro snapshot ingest``) re-resolves only the dirty closure and
   replays untouched clusters from the parent snapshot.  The win is
   bounded by the *dirty fraction*: the closure is conservative
   (connected components of the candidate-pair graph, the unit at which
   exact equality with a full re-resolve is guaranteed), so on the
   densely-connected synthetic stand-ins — where LSH blocking makes one
   giant component — it approaches a full re-resolve, and the table
   reports exactly that.  Separable deltas (a newly digitised parish,
   a disjoint year window) are where the incremental path pays off.

Emits the text table to ``benchmarks/results/`` plus a
machine-readable ``bench_snapshot_warm_start.metrics.json``.
"""

from __future__ import annotations

import time

from common import emit, emit_report, format_table, ios_dataset, telemetry
from repro.core import SnapsConfig, SnapsResolver
from repro.data.records import Dataset
from repro.pedigree import build_pedigree_graph
from repro.query import QueryEngine
from repro.serve import ServeConfig, ServingApp
from repro.store import IncrementalResolver, SnapshotStore

N_DELTA_CERTS = 40


def _split(dataset, n_delta):
    """(base, delta): the last ``n_delta`` certificates form the delta."""
    cert_ids = sorted(dataset.certificates)
    delta_ids = set(cert_ids[-n_delta:])

    def subset(name, keep):
        certs = [c for cid, c in dataset.certificates.items() if cid in keep]
        rids = {rid for c in certs for rid in c.member_record_ids()}
        return Dataset(name, [r for r in dataset if r.record_id in rids], certs)

    return subset("base", set(cert_ids) - delta_ids), subset("delta", delta_ids)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_snapshot_warm_start(benchmark, tmp_path):
    dataset = ios_dataset()
    config = SnapsConfig()
    store = SnapshotStore(tmp_path / "store")
    trace, metrics = telemetry()

    def run():
        timings = {}

        # Offline resolve + snapshot save (amortised once, shown for scale).
        result, timings["resolve_full"] = _timed(
            lambda: SnapsResolver(config).resolve(dataset)
        )
        graph = build_pedigree_graph(dataset, result.entities)
        manifest, timings["snapshot_save"] = _timed(
            lambda: store.save(
                result, graph=graph, config=config, trace=trace, metrics=metrics
            )
        )

        # Boot: cold builds K and S from the graph; warm deserialises them.
        def cold_boot():
            return ServingApp(graph, ServeConfig())

        def warm_boot():
            loaded = store.load(
                artifacts=("graph", "indexes"), trace=trace, metrics=metrics
            )
            return ServingApp(
                loaded.graph,
                ServeConfig(),
                keyword_index=loaded.keyword_index,
                sim_index=loaded.sim_index,
            )

        cold_app, timings["boot_cold"] = _timed(cold_boot)
        warm_app, timings["boot_warm"] = _timed(warm_boot)

        # Sanity: both boots must serve the same answers.
        probe = {"first_name": "john", "surname": "macdonald", "top": "5"}
        cold_body = cold_app.handle("GET", "/v1/search", probe).body
        warm_body = warm_app.handle("GET", "/v1/search", probe).body
        assert cold_body == warm_body, "warm boot diverged from cold boot"

        # Ingest: both paths end with an up-to-date snapshot on disk.
        base, delta = _split(dataset, N_DELTA_CERTS)
        ingest_store = SnapshotStore(tmp_path / "ingest-store")
        ingest_store.save(SnapsResolver(config).resolve(base), config=config)

        def full_path():
            result = SnapsResolver(config).resolve(dataset)
            full_store = SnapshotStore(tmp_path / "full-store")
            return full_store.save(
                result,
                graph=build_pedigree_graph(dataset, result.entities),
                config=config,
            )

        _, timings["reresolve_full"] = _timed(full_path)
        outcome, timings["ingest_incremental"] = _timed(
            lambda: IncrementalResolver(ingest_store).ingest(
                delta, trace=trace, metrics=metrics
            )
        )
        return timings, manifest, outcome

    timings, manifest, outcome = benchmark.pedantic(run, rounds=1, iterations=1)

    boot_speedup = timings["boot_cold"] / max(timings["boot_warm"], 1e-9)
    ingest_speedup = timings["reresolve_full"] / max(
        timings["ingest_incremental"], 1e-9
    )
    dirty_fraction = outcome.stats["dirty_pairs"] / max(
        outcome.stats["candidate_pairs"], 1
    )
    rows = [
        ["boot", "cold (build K+S)", f"{1000 * timings['boot_cold']:.1f}", ""],
        [
            "boot",
            "warm (load snapshot)",
            f"{1000 * timings['boot_warm']:.1f}",
            f"{boot_speedup:.1f}x",
        ],
        [
            "ingest",
            "full re-resolve + save",
            f"{1000 * timings['reresolve_full']:.1f}",
            "",
        ],
        [
            "ingest",
            f"incremental ({N_DELTA_CERTS} certs, "
            f"{100 * dirty_fraction:.0f}% dirty)",
            f"{1000 * timings['ingest_incremental']:.1f}",
            f"{ingest_speedup:.1f}x",
        ],
        ["(once)", "offline resolve", f"{1000 * timings['resolve_full']:.1f}", ""],
        ["(once)", "snapshot save", f"{1000 * timings['snapshot_save']:.1f}", ""],
    ]
    emit(
        "bench_snapshot_warm_start",
        format_table(
            "Snapshot warm start (IOS stand-in)",
            ["phase", "variant", "time ms", "speedup"],
            rows,
        ),
    )
    emit_report(
        "bench_snapshot_warm_start",
        trace=trace,
        metrics=metrics,
        meta={
            "snapshot_id": manifest.snapshot_id,
            "n_delta_certs": N_DELTA_CERTS,
            "timings_ms": {k: round(1000 * v, 3) for k, v in timings.items()},
            "boot_speedup": round(boot_speedup, 3),
            "ingest_speedup": round(ingest_speedup, 3),
            "ingest_stats": outcome.stats,
        },
    )
    assert timings["boot_warm"] < timings["boot_cold"], (
        "warm boot should beat cold boot"
    )
