"""Ablation — parameter sensitivity (t_m, γ), as in the paper's
"parameter sensitivity analysis" that produced the published defaults.

Sweeps the merge threshold and the AMB weight γ on IOS and reports
P/R/F*; the published defaults (t_m=0.85, γ=0.6) should sit at or near
the F* optimum of each sweep.
"""

from __future__ import annotations

from common import emit, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.eval import evaluate_linkage

_TM_VALUES = (0.75, 0.85, 0.95)
_GAMMA_VALUES = (0.4, 0.6, 0.8, 1.0)


def test_ablation_parameters(benchmark):
    dataset = ios_dataset()
    truth = dataset.true_match_pairs("Bp-Bp")

    def run():
        rows = []
        f_by_tm = {}
        for tm in _TM_VALUES:
            result = SnapsResolver(SnapsConfig(merge_threshold=tm)).resolve(dataset)
            ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth)
            rows.append(["t_m", f"{tm:.2f}", f"{ev.precision:.2f}",
                         f"{ev.recall:.2f}", f"{ev.f_star:.2f}"])
            f_by_tm[tm] = ev
        f_by_gamma = {}
        for gamma in _GAMMA_VALUES:
            result = SnapsResolver(SnapsConfig(gamma=gamma)).resolve(dataset)
            ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth)
            rows.append(["gamma", f"{gamma:.2f}", f"{ev.precision:.2f}",
                         f"{ev.recall:.2f}", f"{ev.f_star:.2f}"])
            f_by_gamma[gamma] = ev
        # Optional scoring features (off in the paper's configuration).
        for label, config in (
            ("decay=10y", SnapsConfig(temporal_decay_half_life=10.0)),
            ("geo-addresses", SnapsConfig(use_geocoded_addresses=True)),
        ):
            result = SnapsResolver(config).resolve(dataset)
            ev = evaluate_linkage(result.matched_pairs("Bp-Bp"), truth)
            rows.append(["option", label, f"{ev.precision:.2f}",
                         f"{ev.recall:.2f}", f"{ev.f_star:.2f}"])
        return rows, f_by_tm, f_by_gamma

    rows, f_by_tm, f_by_gamma = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_parameters",
        format_table(
            "Ablation — parameter sensitivity on IOS (Bp-Bp)",
            ["parameter", "value", "P", "R", "F*"],
            rows,
        ),
    )
    # Threshold trade-off: raising t_m raises precision, lowers recall.
    assert f_by_tm[0.95].precision >= f_by_tm[0.75].precision - 1.0
    assert f_by_tm[0.75].recall >= f_by_tm[0.95].recall - 1.0
    # The published default should be within a few F* points of the sweep
    # optimum (it needn't be exactly optimal on synthetic data).
    best_tm = max(ev.f_star for ev in f_by_tm.values())
    assert f_by_tm[0.85].f_star >= best_tm - 5.0
