"""Serving throughput — threaded baseline vs the pre-fork tier.

Beyond the paper's Table 7 (single-threaded query latency), this bench
drives the full serving stack over real sockets with **multiple client
processes** (true parallel load — client threads in one process would
serialise on the GIL exactly when the server stops being the
bottleneck) and compares two deployment shapes on one identical
snapshot:

- the single-process ``ThreadingHTTPServer`` baseline, and
- ``repro.serve.prefork`` fleets of 1, 2, and 4 workers sharing the
  memory-mapped snapshot and one listening socket.

Each configuration contributes a scaling row — QPS, p50/p95/p99, and
per-worker private RSS (``/proc/<pid>/smaps_rollup``, the pages *not*
shared with the master map) — to the text table and to
``benchmarks/results/serving_throughput.metrics.json`` for
``repro bench-history --check``.  One probe query is asserted
byte-identical between the baseline and the fleet: the pre-fork tier
must change throughput, never results.

Speedup assertions are gated on ``os.cpu_count()``: on a single-core CI
box a 4-worker fleet cannot beat one process, and pretending otherwise
would make the bench flaky exactly where it runs most.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import signal
import tempfile
import time
import urllib.request
from pathlib import Path

from common import emit, emit_report, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.pedigree import build_pedigree_graph
from repro.serve import ServeConfig, ServingApp, make_server
from repro.serve.prefork import (
    HEARTBEAT_DIRNAME,
    PreforkConfig,
    PreforkMaster,
    proc_private_bytes,
)
from repro.store import SnapshotStore
from repro.utils.rng import make_rng

N_CLIENT_PROCS = 4
REQUESTS_PER_PROC = 40
N_DISTINCT_QUERIES = 24
PREFORK_WORKER_COUNTS = (1, 2, 4)
BOOT_TIMEOUT_S = 120.0


def _build_store(tmp: Path):
    """One resolved snapshot on disk; returns (store_dir, graph)."""
    dataset = ios_dataset()
    config = SnapsConfig()
    result = SnapsResolver(config).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    store_dir = tmp / "store"
    SnapshotStore(store_dir).save(result, graph=graph, config=config)
    return store_dir, graph


def _workload(graph, seed=29):
    """Distinct query bodies, ~1/3 with a misspelled surname."""
    rng = make_rng(seed)
    named = [e for e in graph if e.first("first_name") and e.first("surname")]
    queries = []
    for _ in range(N_DISTINCT_QUERIES):
        entity = rng.choice(named)
        surname = entity.first("surname")
        if rng.random() < 0.35 and len(surname) > 4:
            pos = rng.randrange(1, len(surname))
            surname = surname[:pos] + surname[pos + 1 :]
        queries.append((entity.first("first_name"), surname))
    return queries


def _post_search(base_url: str, first: str, surname: str) -> bytes:
    body = json.dumps(
        {"first_name": first, "surname": surname, "top": 10}
    ).encode("utf-8")
    request = urllib.request.Request(
        base_url + "/v1/search",
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=60.0) as response:
        assert 200 <= response.status < 300
        return response.read()


def _client_proc(base_url, queries, seed, queue):
    """One load-generator process: skewed replay, wall latencies out."""
    rng = make_rng(seed)
    latencies = []
    for _ in range(REQUESTS_PER_PROC):
        # Squaring the uniform draw favours low indices, so popular
        # queries repeat often (cache food), as on the real deployment.
        first, surname = queries[int(len(queries) * rng.random() ** 2)]
        start = time.perf_counter()
        _post_search(base_url, first, surname)
        latencies.append(time.perf_counter() - start)
    queue.put(latencies)


def _drive_processes(base_url, queries, seed):
    """Hammer a live server from N processes; sorted latencies + QPS."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_client_proc, args=(base_url, queries, seed + i, queue)
        )
        for i in range(N_CLIENT_PROCS)
    ]
    wall_start = time.perf_counter()
    for proc in procs:
        proc.start()
    collected = [queue.get(timeout=300.0) for _ in procs]
    wall = time.perf_counter() - wall_start
    for proc in procs:
        proc.join(timeout=30.0)
    latencies = sorted(t for batch in collected for t in batch)
    return latencies, len(latencies) / wall


def _wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise TimeoutError(f"timed out waiting for {what}")


class _PreforkFleet:
    """Context manager: a live pre-fork fleet on an ephemeral port."""

    def __init__(self, store_dir: Path, run_dir: Path, workers: int) -> None:
        self.run_dir = run_dir
        self.workers = workers
        self.master = PreforkMaster(
            store_dir,
            config=PreforkConfig(workers=workers, run_dir=run_dir),
            serve_config=ServeConfig(host="127.0.0.1", port=0),
        )
        self.pid = 0
        self.base_url = ""

    def __enter__(self) -> "_PreforkFleet":
        self.pid = os.fork()
        if self.pid == 0:
            try:
                self.master.start()
            finally:
                os._exit(0)
        address_file = self.run_dir / "address.json"
        _wait_for(address_file.exists, BOOT_TIMEOUT_S, "prefork address")
        _wait_for(
            lambda: len(self.worker_pids()) >= self.workers,
            BOOT_TIMEOUT_S,
            f"{self.workers} worker heartbeats",
        )
        address = json.loads(address_file.read_text())
        self.base_url = f"http://{address['host']}:{address['port']}"
        return self

    def worker_pids(self) -> set[int]:
        return {
            int(path.stem)
            for path in (self.run_dir / HEARTBEAT_DIRNAME).glob("*.hb")
        }

    def private_rss_bytes(self) -> list[int]:
        """Per-worker private (unshared) resident bytes, live."""
        sizes = []
        for pid in sorted(self.worker_pids()):
            private = proc_private_bytes(pid)
            if private is not None:
                sizes.append(private)
        return sizes

    def __exit__(self, *exc) -> None:
        os.kill(self.pid, signal.SIGTERM)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            done, _ = os.waitpid(self.pid, os.WNOHANG)
            if done == self.pid:
                return
            time.sleep(0.1)
        os.kill(self.pid, signal.SIGKILL)
        os.waitpid(self.pid, 0)


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_serving_throughput(benchmark):
    tmp = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    try:
        store_dir, graph = _build_store(tmp)
        queries = _workload(graph)
        probe = queries[0]

        def run_all():
            results = {}
            # Threaded baseline: same snapshot, eager arrays, one
            # process, thread-per-connection.
            loaded = SnapshotStore(store_dir).load(
                artifacts=("graph", "indexes")
            )
            app = ServingApp(
                loaded.graph,
                ServeConfig(cache_size=256, max_concurrency=8),
                keyword_index=loaded.keyword_index,
                sim_index=loaded.sim_index,
                manifest=loaded.manifest,
            )
            server = make_server(app, "127.0.0.1", 0)
            host, port = server.server_address[:2]
            import threading

            threading.Thread(target=server.serve_forever, daemon=True).start()
            try:
                base_url = f"http://{host}:{port}"
                probe_body = _post_search(base_url, *probe)
                results["threaded"] = (
                    *_drive_processes(base_url, queries, seed=37),
                    [],
                )
            finally:
                server.shutdown()
                server.server_close()
            # Pre-fork fleets over the memory-mapped snapshot.
            for workers in PREFORK_WORKER_COUNTS:
                with _PreforkFleet(
                    store_dir, tmp / f"run-w{workers}", workers
                ) as fleet:
                    fleet_probe = _post_search(fleet.base_url, *probe)
                    assert fleet_probe == probe_body, (
                        "pre-fork tier changed /v1/search bytes"
                    )
                    latencies, qps = _drive_processes(
                        fleet.base_url, queries, seed=37
                    )
                    results[f"prefork_w{workers}"] = (
                        latencies, qps, fleet.private_rss_bytes(),
                    )
            return results

        results = benchmark.pedantic(run_all, rounds=1, iterations=1)

        rows = []
        headline = {}
        for label, (latencies, qps, rss) in results.items():
            row = {
                "p50_ms": 1000 * _percentile(latencies, 0.50),
                "p95_ms": 1000 * _percentile(latencies, 0.95),
                "p99_ms": 1000 * _percentile(latencies, 0.99),
                "qps": qps,
            }
            if rss:
                row["private_rss_mb_per_worker"] = (
                    sum(rss) / len(rss) / 1e6
                )
            headline[label] = {k: round(v, 3) for k, v in row.items()}
            rows.append([
                label,
                len(latencies),
                f"{row['p50_ms']:.2f}",
                f"{row['p95_ms']:.2f}",
                f"{row['p99_ms']:.2f}",
                f"{row['qps']:.1f}",
                f"{row['private_rss_mb_per_worker']:.1f}" if rss else "-",
            ])
        emit(
            "serving_throughput",
            format_table(
                f"Serving throughput — {N_CLIENT_PROCS} client processes, "
                f"{N_CLIENT_PROCS * REQUESTS_PER_PROC} requests over "
                f"{N_DISTINCT_QUERIES} distinct queries, {len(graph)} "
                f"entities, {os.cpu_count()} CPUs",
                ["configuration", "requests", "p50 ms", "p95 ms", "p99 ms",
                 "QPS", "worker RSS MB"],
                rows,
            ),
        )
        emit_report(
            "serving_throughput",
            meta={
                "entities": len(graph),
                "cpus": os.cpu_count(),
                "client_procs": N_CLIENT_PROCS,
                **headline,
            },
        )
        # Shape assertions that hold on any box: every configuration
        # answered every request, interactive latency bound respected.
        expected = N_CLIENT_PROCS * REQUESTS_PER_PROC
        for label, (latencies, _qps, _rss) in results.items():
            assert len(latencies) == expected, label
            assert _percentile(latencies, 0.99) < 5.0, label
        # Scaling assertions only where the hardware can express them:
        # on a single-core box a fleet cannot out-run one process.
        cpus = os.cpu_count() or 1
        if cpus >= 4:
            assert (
                results["prefork_w4"][1] > 1.5 * results["threaded"][1]
            ), "4 workers on >=4 cores should clearly beat the threaded server"
        if cpus >= 2:
            assert (
                results["prefork_w2"][1] > results["prefork_w1"][1] * 0.9
            ), "2 workers should not be slower than 1"
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
