"""Serving throughput — the online subsystem under concurrent load.

Beyond the paper's Table 7 (single-threaded query latency), this bench
drives the full ``repro.serve`` HTTP stack — route dispatch, admission
control, result cache, JSON serialisation, socket I/O — with
multi-threaded clients replaying a skewed query workload (popular
ancestors are searched repeatedly, as on the real SNAPS deployment), and
reports p50/p95/p99 latency and QPS with the result cache on vs off.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from common import emit, emit_report, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.obs import MetricsRegistry
from repro.pedigree import build_pedigree_graph
from repro.serve import ServeClient, ServeConfig, ServingApp, make_server
from repro.utils.rng import make_rng

N_CLIENT_THREADS = 4
REQUESTS_PER_THREAD = 60
N_DISTINCT_QUERIES = 24


def _build_graph():
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    return build_pedigree_graph(dataset, result.entities)


def _workload(graph, seed=29):
    """Distinct query bodies, ~1/3 with a misspelled surname."""
    rng = make_rng(seed)
    named = [e for e in graph if e.first("first_name") and e.first("surname")]
    queries = []
    for _ in range(N_DISTINCT_QUERIES):
        entity = rng.choice(named)
        surname = entity.first("surname")
        if rng.random() < 0.35 and len(surname) > 4:
            pos = rng.randrange(1, len(surname))
            surname = surname[:pos] + surname[pos + 1 :]
        queries.append((entity.first("first_name"), surname))
    return queries


def _drive(app, queries, seed):
    """Hammer a live server from N threads; per-request wall latencies."""
    server = make_server(app, "127.0.0.1", 0)
    host, port = server.server_address[:2]
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    try:
        base_url = f"http://{host}:{port}"

        def client_thread(thread_index):
            client = ServeClient(base_url)
            rng = make_rng(seed + thread_index)
            latencies = []
            for _ in range(REQUESTS_PER_THREAD):
                # Skewed popularity: squaring the uniform draw favours
                # low indices, so some queries repeat often (cache food).
                first, surname = queries[
                    int(len(queries) * rng.random() ** 2)
                ]
                start = time.perf_counter()
                client.search(first, surname, top=10)
                latencies.append(time.perf_counter() - start)
            return latencies

        wall_start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=N_CLIENT_THREADS) as pool:
            per_thread = list(pool.map(client_thread, range(N_CLIENT_THREADS)))
        wall = time.perf_counter() - wall_start
    finally:
        server.shutdown()
        server.server_close()
    latencies = sorted(t for thread in per_thread for t in thread)
    return latencies, len(latencies) / wall


def _percentile(sorted_values, fraction):
    index = min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


def test_serving_throughput(benchmark):
    graph = _build_graph()
    queries = _workload(graph)
    apps = {
        "cache on": ServingApp(
            graph, ServeConfig(cache_size=256, max_concurrency=8)
        ),
        "cache off": ServingApp(
            graph, ServeConfig(cache_size=0, max_concurrency=8)
        ),
    }

    def run_all():
        return {
            label: _drive(app, queries, seed=37)
            for label, app in apps.items()
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    headline = {}
    for label, (latencies, qps) in results.items():
        row = {
            "p50_ms": 1000 * _percentile(latencies, 0.50),
            "p95_ms": 1000 * _percentile(latencies, 0.95),
            "p99_ms": 1000 * _percentile(latencies, 0.99),
            "qps": qps,
        }
        headline[label.replace(" ", "_")] = {
            k: round(v, 3) for k, v in row.items()
        }
        rows.append([
            label,
            len(latencies),
            f"{row['p50_ms']:.2f}",
            f"{row['p95_ms']:.2f}",
            f"{row['p99_ms']:.2f}",
            f"{row['qps']:.1f}",
        ])
    cache_stats = apps["cache on"].cache.stats()
    hit_rate = cache_stats["hits"] / max(1, cache_stats["hits"] + cache_stats["misses"])
    emit(
        "serving_throughput",
        format_table(
            f"Serving throughput — {N_CLIENT_THREADS} client threads, "
            f"{N_CLIENT_THREADS * REQUESTS_PER_THREAD} requests over "
            f"{N_DISTINCT_QUERIES} distinct queries, {len(graph)} entities "
            f"(cache-on hit rate {100 * hit_rate:.0f}%)",
            ["configuration", "requests", "p50 ms", "p95 ms", "p99 ms", "QPS"],
            rows,
        ),
    )
    merged = MetricsRegistry()
    for app in apps.values():
        merged.merge(app.metrics)
    emit_report(
        "serving_throughput",
        metrics=merged,
        meta={"entities": len(graph), **headline},
    )
    # Shapes: the served path must stay inside the paper's interactive
    # bound, every request must have been answered (no hangs or shed
    # load at this gentle concurrency), and a skewed workload must feed
    # the cache.
    for label, (latencies, _qps) in results.items():
        assert len(latencies) == N_CLIENT_THREADS * REQUESTS_PER_THREAD, label
        assert _percentile(latencies, 0.99) < 2.0, label
    assert cache_stats["hits"] > 0
    assert apps["cache off"].cache.stats()["hits"] == 0
    on = apps["cache on"].metrics
    assert on.counter_value("serve.responses.2xx") == \
        N_CLIENT_THREADS * REQUESTS_PER_THREAD
    assert on.histograms["serve.search.latency_seconds"].count == \
        N_CLIENT_THREADS * REQUESTS_PER_THREAD
    # The cache shields the engine: far fewer engine searches than
    # requests when caching is on.
    assert on.counter_value("query.searches") < \
        N_CLIENT_THREADS * REQUESTS_PER_THREAD
