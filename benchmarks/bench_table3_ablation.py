"""Table 3 — ablation analysis of the four key techniques (IOS).

The paper removes one technique at a time (PROP-A+PROP-C together, AMB,
REL, REF) and reports P/R/F* for Bp-Bp and Bp-Dp on IOS.  Headline
shapes: removing PROP drops F* by ~10 points (precision collapses
first); removing REL devastates Bp-Dp (the partial-match-group problem);
removing AMB and REF cost a few points each.
"""

from __future__ import annotations

import dataclasses

from common import emit, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.eval import evaluate_linkage

_VARIANTS = [
    ("SNAPS", {}),
    ("without PROP-A/C", {"use_propagation": False}),
    ("without AMB", {"use_ambiguity": False}),
    ("without REL", {"use_relational": False}),
    ("without REF", {"use_refinement": False}),
]


def _run_all():
    dataset = ios_dataset()
    truth = {rp: dataset.true_match_pairs(rp) for rp in ("Bp-Bp", "Bp-Dp")}
    rows = []
    results = {}
    for label, overrides in _VARIANTS:
        config = dataclasses.replace(SnapsConfig(), **overrides)
        result = SnapsResolver(config).resolve(dataset)
        for role_pair in ("Bp-Bp", "Bp-Dp"):
            ev = evaluate_linkage(
                result.matched_pairs(role_pair), truth[role_pair], role_pair
            )
            rows.append([
                role_pair, label,
                f"{ev.precision:.2f}", f"{ev.recall:.2f}", f"{ev.f_star:.2f}",
            ])
            results[(label, role_pair)] = ev
    return rows, results


def test_table3_ablation(benchmark):
    rows, results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    emit(
        "table3",
        format_table(
            "Table 3 — ablation of SNAPS's key techniques (IOS)",
            ["role pair", "variant", "P", "R", "F*"],
            rows,
        ),
    )
    full_bpbp = results[("SNAPS", "Bp-Bp")]
    full_bpdp = results[("SNAPS", "Bp-Dp")]
    # Shape 1: no ablation may beat the full system by a clear margin.
    # (AMB's benefit grows with population size — at small bench scales
    # its sign can flip by a point or two; see EXPERIMENTS.md.)
    for label, _ in _VARIANTS[1:]:
        assert full_bpbp.f_star >= results[(label, "Bp-Bp")].f_star - 4.0
        assert full_bpdp.f_star >= results[(label, "Bp-Dp")].f_star - 4.0
    # Shape 2: removing propagation clearly costs F* on both role pairs —
    # the paper's headline ablation result (up to 12 points there).
    assert full_bpbp.f_star > results[("without PROP-A/C", "Bp-Bp")].f_star
    assert full_bpdp.f_star > results[("without PROP-A/C", "Bp-Dp")].f_star
    # Shape 3: removing REL hurts, and hurts Bp-Dp (where partial-match
    # groups dominate) at least as much as Bp-Bp.
    rel_drop_bpdp = full_bpdp.f_star - results[("without REL", "Bp-Dp")].f_star
    rel_drop_bpbp = full_bpbp.f_star - results[("without REL", "Bp-Bp")].f_star
    assert rel_drop_bpdp > 0.0
    assert rel_drop_bpdp >= rel_drop_bpbp - 1.0
