"""Extension — census-data incorporation (the paper's stated future work:
"we plan to investigate how census data can be incorporated into our ER
techniques to improve linkage quality", Section 12).

Resolves the same simulated population with and without decennial census
households and compares vital-record linkage quality.  Census records add
positive evidence (a person's changing surnames/addresses accumulate
through PROP-A) and negative evidence (one household per person per
census year is a new link constraint).
"""

from __future__ import annotations

from common import BENCH_SCALE, emit, format_table
from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_ios_census_dataset, make_ios_dataset
from repro.eval import evaluate_linkage


def test_extension_census(benchmark):
    plain = make_ios_dataset(scale=BENCH_SCALE * 0.8)
    census = make_ios_census_dataset(scale=BENCH_SCALE * 0.8)

    def run():
        rows = []
        scores = {}
        for dataset, label in ((plain, "vital records only"),
                               (census, "with census")):
            result = SnapsResolver(SnapsConfig()).resolve(dataset)
            for role_pair in ("Bp-Bp", "Bp-Dp"):
                ev = evaluate_linkage(
                    result.matched_pairs(role_pair),
                    dataset.true_match_pairs(role_pair),
                )
                rows.append([
                    label, role_pair, len(dataset),
                    f"{ev.precision:.2f}", f"{ev.recall:.2f}", f"{ev.f_star:.2f}",
                ])
                scores[(label, role_pair)] = ev
            if dataset is census:
                ev = evaluate_linkage(
                    result.matched_pairs("Cp-Cp"),
                    dataset.true_match_pairs("Cp-Cp"),
                )
                rows.append([
                    label, "Cp-Cp", len(dataset),
                    f"{ev.precision:.2f}", f"{ev.recall:.2f}", f"{ev.f_star:.2f}",
                ])
        return rows, scores

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_census",
        format_table(
            "Extension — linkage quality with vs without census households",
            ["configuration", "role pair", "records", "P", "R", "F*"],
            rows,
        ),
    )
    # Census evidence must not degrade vital-record linkage, and should
    # lift Bp-Bp precision (the extra per-census-year link constraint
    # blocks same-name conflations).
    for role_pair in ("Bp-Bp", "Bp-Dp"):
        with_census = scores[("with census", role_pair)]
        without = scores[("vital records only", role_pair)]
        assert with_census.f_star >= without.f_star - 2.0
    assert (
        scores[("with census", "Bp-Bp")].precision
        >= scores[("vital records only", "Bp-Bp")].precision - 0.5
    )
