"""Shared infrastructure for the benchmark harness.

Every bench reproduces one table or figure of the paper (see DESIGN.md's
experiment index): it builds the synthetic stand-in datasets, runs the
systems, prints the paper-style table to stdout, and appends it to
``benchmarks/results/<bench>.txt`` so the numbers survive the run.

Dataset scale is controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default 0.15 ≈ a few thousand records per dataset, minutes for
the whole harness).  ``scale=1.0`` approximates the paper's record
counts.  Absolute numbers shift with scale; the *shapes* the paper
reports (who wins, where quality collapses, near-linear scaling) hold
across scales — EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.data.records import Dataset
from repro.data.synthetic import make_bhic_dataset, make_ios_dataset, make_kil_dataset
from repro.obs import MetricsRegistry, Trace, build_report, save_report

RESULTS_DIR = Path(__file__).parent / "results"

# 0.25 ≈ 4k records per dataset.  Smaller scales run faster but shrink
# the name-ambiguity effect that the AMB technique exists to counter
# (at very small scale "without AMB" can even win — there is nothing to
# disambiguate).  See EXPERIMENTS.md.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.25"))


@lru_cache(maxsize=None)
def ios_dataset(scale: float = BENCH_SCALE) -> Dataset:
    """IOS stand-in at bench scale (cached per process)."""
    return make_ios_dataset(scale=scale)


@lru_cache(maxsize=None)
def kil_dataset(scale: float = BENCH_SCALE) -> Dataset:
    """KIL stand-in at bench scale (cached per process)."""
    return make_kil_dataset(scale=scale)


@lru_cache(maxsize=None)
def bhic_dataset(start_year: int, end_year: int = 1935) -> Dataset:
    """BHIC stand-in for one scalability window (cached per process)."""
    return make_bhic_dataset(start_year, end_year, scale=BENCH_SCALE * 0.6)


def format_table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    """Monospace table matching how the paper's tables read."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def emit(bench_name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{bench_name}.txt"
    with path.open("a") as handle:
        handle.write(text)
        handle.write("\n\n")


def telemetry() -> tuple[Trace, MetricsRegistry]:
    """A fresh (trace, metrics) pair for one instrumented bench run."""
    return Trace(), MetricsRegistry()


def emit_report(
    bench_name: str,
    trace: Trace | None = None,
    metrics: MetricsRegistry | None = None,
    meta: dict | None = None,
) -> Path:
    """Persist a machine-readable run report next to the text table.

    Written to ``benchmarks/results/<bench>.metrics.json`` (overwritten
    per run — the text table keeps history, the artefact keeps the
    latest structured numbers for downstream tooling).  With
    ``SNAPS_BENCH_HISTORY=1`` the report is also appended straight into
    ``BENCH_HISTORY.jsonl`` at the repo root (same row format as
    ``repro bench-history``), so a bench run leaves its trajectory row
    without a second command.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    base_meta = {"bench": bench_name, "scale": BENCH_SCALE}
    base_meta.update(meta or {})
    report = build_report(trace=trace, metrics=metrics, meta=base_meta)
    path = save_report(report, RESULTS_DIR / f"{bench_name}.metrics.json")
    if os.environ.get("SNAPS_BENCH_HISTORY", "") in ("1", "true"):
        from datetime import datetime, timezone

        from repro.obs.history import append_rows, history_row

        row = history_row(
            report, str(path), datetime.now(timezone.utc).isoformat()
        )
        append_rows(Path(__file__).parent.parent / "BENCH_HISTORY.jsonl", [row])
    return path
