"""Ablation — similarity-aware index threshold s_t (DESIGN.md design
choice; the paper picks s_t = 0.5 as the size/recall sweet spot).

Sweeps s_t over the IOS surname universe and reports the index size
(pre-computed pairs), build time, and the recall of approximate retrieval
for single-typo misspellings.
"""

from __future__ import annotations

import time

from common import emit, format_table, ios_dataset
from repro.index import SimilarityAwareIndex
from repro.utils.rng import make_rng

_THRESHOLDS = (0.3, 0.5, 0.7, 0.9)


def _misspellings(values, n, seed=31):
    rng = make_rng(seed)
    candidates = [v for v in values if len(v) > 4]
    out = []
    for _ in range(n):
        value = rng.choice(candidates)
        pos = rng.randrange(1, len(value))
        out.append((value[:pos] + value[pos + 1 :], value))
    return out


def test_ablation_simindex(benchmark):
    dataset = ios_dataset()
    surnames = sorted({
        record.get("surname") for record in dataset if record.get("surname")
    })
    probes = _misspellings(surnames, n=150)

    def run():
        rows = []
        recalls = {}
        for threshold in _THRESHOLDS:
            start = time.perf_counter()
            index = SimilarityAwareIndex(surnames, threshold=threshold)
            build_s = time.perf_counter() - start
            found = 0
            start = time.perf_counter()
            for misspelt, original in probes:
                matches = dict(index.matches(misspelt))
                if original in matches:
                    found += 1
            probe_ms = 1000.0 * (time.perf_counter() - start) / len(probes)
            recall = found / len(probes)
            rows.append([
                f"{threshold:.1f}", index.n_precomputed_pairs(),
                f"{build_s:.2f}", f"{probe_ms:.3f}", f"{100 * recall:.1f}%",
            ])
            recalls[threshold] = (recall, index.n_precomputed_pairs())
        return rows, recalls

    rows, recalls = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_simindex",
        format_table(
            "Ablation — similarity-aware index threshold s_t (IOS surnames)",
            ["s_t", "stored pairs", "build (s)", "probe (ms)", "typo recall"],
            rows,
        ),
    )
    # Lower thresholds store more pairs and retrieve at least as well.
    assert recalls[0.3][1] >= recalls[0.9][1]
    assert recalls[0.3][0] >= recalls[0.9][0]
    # The paper's default keeps near-max recall for single-typo queries.
    assert recalls[0.5][0] >= recalls[0.3][0] - 0.05
