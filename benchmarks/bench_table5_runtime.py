"""Table 5 — offline runtimes and dependency-graph sizes.

Paper Table 5 reports |N_A|, |N_R| and the wall-clock seconds of the
offline component for SNAPS and the baselines on IOS and KIL.  Shapes:
Attr-Sim is the fastest (no relationship processing); Dep-Graph is
faster than SNAPS (fewer techniques); Rel-Cluster is the slowest
unsupervised system (iterative clustering); the supervised baseline is
slowest overall (training cost across 4 classifiers × 2 regimes).
"""

from __future__ import annotations

import time

from common import emit, emit_report, format_table, ios_dataset, kil_dataset, telemetry
from repro.baselines import (
    AttrSimLinker,
    DepGraphLinker,
    RelClusterLinker,
    SupervisedLinker,
)
from repro.core import SnapsConfig, SnapsResolver


def _time_systems(dataset):
    rows = []
    timings = {}
    trace, metrics = telemetry()

    def timed(label, fn):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        timings[label] = elapsed
        return result, elapsed

    snaps, snaps_s = timed(
        "SNAPS",
        lambda: SnapsResolver(SnapsConfig()).resolve(
            dataset, trace=trace, metrics=metrics
        ),
    )
    emit_report(
        f"table5_{dataset.name}", trace, metrics, meta=snaps.summary()
    )
    _, attr_s = timed("Attr-Sim", lambda: AttrSimLinker().link(dataset))
    _, dep_s = timed("Dep-Graph", lambda: DepGraphLinker().link(dataset))
    _, rel_s = timed("Rel-Cluster", lambda: RelClusterLinker().link(dataset))
    _, sup_s = timed(
        "Magellan-style", lambda: SupervisedLinker(seed=7).run(dataset, "Bp-Bp")
    )
    rows.append([
        dataset.name, snaps.n_atomic, snaps.n_relational,
        f"{snaps_s:.1f}", f"{attr_s:.1f}", f"{dep_s:.1f}",
        f"{rel_s:.1f}", f"{sup_s:.1f}",
    ])
    return rows, timings


def test_table5_runtime(benchmark):
    def run():
        rows_ios, t_ios = _time_systems(ios_dataset())
        rows_kil, t_kil = _time_systems(kil_dataset())
        return rows_ios + rows_kil, (t_ios, t_kil)

    rows, (t_ios, t_kil) = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table5",
        format_table(
            "Table 5 — offline runtimes (seconds) and graph sizes",
            ["dataset", "|N_A|", "|N_R|", "SNAPS", "Attr-Sim", "Dep-Graph",
             "Rel-Cluster", "Magellan-style"],
            rows,
        ),
    )
    for timings in (t_ios, t_kil):
        # Attr-Sim fastest of all systems.
        assert timings["Attr-Sim"] == min(timings.values())
        # Dep-Graph not slower than SNAPS (fewer techniques), small noise
        # margin allowed.
        assert timings["Dep-Graph"] <= timings["SNAPS"] * 1.4
