"""Table 6 — scalability over growing BHIC time windows.

Paper Table 6 widens the BHIC window (1900–1935 → 1870–1935), reports
per-phase times (generate N_A, generate N_R, bootstrap, iterative
merging) and the linkage time per node and per edge.  The headline
claims: merging dominates total runtime, and linkage time grows
near-linearly with graph size.

A second sweep (``test_table6_shard_scaling``) resolves the widest
window with ``repro.shard`` at 1/2/4 shards, reporting wall-clock,
speedup over serial, boundary-pair counts, and — the invariant the
subsystem exists to keep — whether each shard count's clusters payload
is byte-identical to the serial one.
"""

from __future__ import annotations

import json
import time

from common import bhic_dataset, emit, emit_report, format_table, telemetry
from repro.core import SnapsConfig, SnapsResolver
from repro.obs import MetricsRegistry

_WINDOWS = [(1920, 1935), (1910, 1935), (1900, 1935), (1890, 1935)]
_SHARD_COUNTS = (1, 2, 4)


def _run_window(start, end, harness_metrics):
    dataset = bhic_dataset(start, end)
    trace, metrics = telemetry()
    result = SnapsResolver(SnapsConfig()).resolve(
        dataset, trace=trace, metrics=metrics
    )
    harness_metrics.merge(metrics)
    times = result.timings.times
    n_nodes = result.n_relational
    n_edges = sum(len(g.edges) for g in result.graph.groups.values())
    linkage_time = times.get("bootstrap", 0.0) + times.get("merging", 0.0)
    return {
        "window": f"{start}-{end}",
        "nodes": n_nodes,
        "edges": n_edges,
        "gen_na_s": times.get("graph_generation", 0.0),
        "gen_nr_s": times.get("blocking", 0.0),
        "bootstrap_s": times.get("bootstrap", 0.0),
        "merge_s": times.get("merging", 0.0),
        "linkage_ms_per_node": 1000.0 * linkage_time / max(1, n_nodes),
        "linkage_ms_per_edge": 1000.0 * linkage_time / max(1, n_edges),
        "candidate_pairs": metrics.counter_value("blocking.candidate_pairs"),
    }


def test_table6_scalability(benchmark):
    harness_metrics = MetricsRegistry()

    def run():
        return [
            _run_window(start, end, harness_metrics) for start, end in _WINDOWS
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "table6", metrics=harness_metrics,
        meta={"windows": [f"{s}-{e}" for s, e in _WINDOWS]},
    )
    rows = [
        [
            r["window"], r["nodes"], r["edges"],
            f"{r['gen_na_s']:.2f}", f"{r['gen_nr_s']:.2f}",
            f"{r['bootstrap_s']:.2f}", f"{r['merge_s']:.2f}",
            f"{r['linkage_ms_per_node']:.3f}", f"{r['linkage_ms_per_edge']:.3f}",
        ]
        for r in results
    ]
    emit(
        "table6",
        format_table(
            "Table 6 — offline scalability over growing BHIC windows",
            ["window", "nodes", "edges", "gen N_A (s)", "gen N_R (s)",
             "bootstrap (s)", "merge (s)", "link ms/node", "link ms/edge"],
            rows,
        ),
    )
    # Shape 1: graph size grows with the window.
    sizes = [r["nodes"] for r in results]
    assert sizes == sorted(sizes)
    # Shape 2: merging dominates bootstrap in every window.
    for r in results:
        assert r["merge_s"] >= r["bootstrap_s"]
    # Shape 3: near-linear scaling — per-node linkage time grows far
    # slower than the graph itself (the paper's per-node column grows
    # sub-linearly relative to nodes; allow generous head-room).
    growth_nodes = results[-1]["nodes"] / max(1, results[0]["nodes"])
    growth_per_node = results[-1]["linkage_ms_per_node"] / max(
        1e-9, results[0]["linkage_ms_per_node"]
    )
    assert growth_per_node < growth_nodes


def _clusters_payload(result) -> bytes:
    """The exact bytes ``clusters.json`` would hold for this result."""
    from repro.store import codecs

    blob = codecs.encode_clusters(
        result.entities,
        {"n_atomic": result.n_atomic, "n_relational": result.n_relational},
    )
    return json.dumps(blob).encode()


def run_shard_sweep(harness_metrics=None) -> dict:
    """Serial reference plus 1/2/4-shard resolves of the widest window."""
    from repro.parallel import ParallelConfig, available_cpus
    from repro.shard import resolve_sharded

    start_year, end_year = _WINDOWS[-1]
    dataset = bhic_dataset(start_year, end_year)
    config = SnapsConfig()
    begin = time.perf_counter()
    serial = SnapsResolver(config).resolve(
        dataset, parallel=ParallelConfig(workers=0)
    )
    serial_s = time.perf_counter() - begin
    reference = _clusters_payload(serial)
    rows: list[list[object]] = [
        ["serial", f"{serial_s:.2f}", "1.00x", "-", "(reference)"]
    ]
    runs: dict[str, dict] = {"serial": {"seconds": round(serial_s, 3)}}
    trace, metrics = telemetry()
    for n_shards in _SHARD_COUNTS:
        instrument = n_shards == _SHARD_COUNTS[-1]
        begin = time.perf_counter()
        sharded = resolve_sharded(
            dataset,
            config,
            n_shards=n_shards,
            trace=trace if instrument else None,
            metrics=metrics if instrument else None,
        )
        elapsed = time.perf_counter() - begin
        identical = _clusters_payload(sharded.result) == reference
        speedup = serial_s / elapsed if elapsed > 0 else float("inf")
        runs[str(n_shards)] = {
            "seconds": round(elapsed, 3),
            "speedup": round(speedup, 3),
            "identical": identical,
            "boundary_pairs": sharded.n_boundary_pairs,
        }
        rows.append([
            f"{n_shards} shard(s)",
            f"{elapsed:.2f}",
            f"{speedup:.2f}x",
            sharded.n_boundary_pairs,
            "yes" if identical else "NO",
        ])
    if harness_metrics is not None:
        harness_metrics.merge(metrics)
    emit(
        "table6_shards",
        format_table(
            f"Table 6 companion — sharded resolution, BHIC "
            f"{start_year}-{end_year} ({len(dataset)} records, "
            f"{available_cpus()} CPU(s) available)",
            ["configuration", "seconds", "speedup", "boundary pairs",
             "identical to serial"],
            rows,
        ),
    )
    emit_report(
        "table6_shards",
        trace,
        metrics,
        meta={
            "records": len(dataset),
            "window": f"{start_year}-{end_year}",
            "available_cpus": available_cpus(),
            "runs": runs,
        },
    )
    return runs


def test_table6_shard_scaling(benchmark):
    harness_metrics = MetricsRegistry()
    runs = benchmark.pedantic(
        lambda: run_shard_sweep(harness_metrics), rounds=1, iterations=1
    )
    # The parity column is the whole point: every shard count must
    # reproduce the serial clusters payload byte for byte.
    assert all(
        facts["identical"]
        for name, facts in runs.items()
        if name != "serial"
    ), "sharded output diverged from serial"
