"""Table 2 — dataset characteristics per role pair.

Paper Table 2 reports, for IOS and KIL and the role pairs Bp-Bp and
Bp-Dp: the record counts on each side, the number of candidate record
pairs after blocking, and the number of true matches.
"""

from __future__ import annotations

from common import emit, format_table, ios_dataset, kil_dataset
from repro.blocking.candidates import generate_candidate_pairs
from repro.blocking.composite import CompositeBlocker, PhoneticNameKeyBlocker
from repro.blocking.lsh import LshBlocker
from repro.data.roles import PARENT_ROLE_GROUPS

_ROLE_PAIRS = ("Bp-Bp", "Bp-Dp")


def _stats_for(dataset):
    blocker = CompositeBlocker([LshBlocker(), PhoneticNameKeyBlocker()])
    pairs = list(generate_candidate_pairs(dataset, blocker))
    rows = []
    for role_pair in _ROLE_PAIRS:
        left_name, right_name = role_pair.split("-")
        left = PARENT_ROLE_GROUPS[left_name]
        right = PARENT_ROLE_GROUPS[right_name]
        n_left = len(dataset.records_with_role(left))
        n_right = len(dataset.records_with_role(right))
        in_pair = 0
        for pair in pairs:
            a = dataset.record(pair.rid_a)
            b = dataset.record(pair.rid_b)
            if (a.role in left and b.role in right) or (
                a.role in right and b.role in left
            ):
                in_pair += 1
        truth = len(dataset.true_match_pairs(role_pair))
        rows.append([dataset.name, role_pair, n_left, n_right, in_pair, truth])
    return rows


def test_table2_dataset_stats(benchmark):
    def compute():
        return _stats_for(ios_dataset()) + _stats_for(kil_dataset())

    rows = benchmark(compute)
    emit(
        "table2",
        format_table(
            "Table 2 — dataset characteristics (records, candidate pairs, true matches)",
            ["dataset", "role pair", "#role-1", "#role-2", "record pairs",
             "true matches"],
            rows,
        ),
    )
    # Shape: KIL larger than IOS; candidate pairs exceed true matches by
    # a wide margin; every cell positive.
    ios_rows = [r for r in rows if r[0] == "IOS"]
    kil_rows = [r for r in rows if r[0] == "KIL"]
    assert kil_rows[0][2] > ios_rows[0][2]
    for row in rows:
        assert row[4] > row[5] > 0
