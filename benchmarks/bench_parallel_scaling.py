"""Parallel resolution scaling — speedup and parity per worker count.

Resolves the IOS stand-in with the serial reference path (``workers=0``)
and the parallel substrate at 1, 2 and 4 workers, reporting wall-clock,
speedup over serial, and — the property everything else rests on —
whether each run's entity clusters are identical to serial's.

Worker counts above the machine's CPU count degrade gracefully to the
in-process parallel pipeline (vectorised MinHash, batch scoring, seeded
caches), so on a small box the 2- and 4-worker rows mostly measure that
pipeline rather than fan-out; the speedup there is algorithmic.

Runs standalone (CI's perf-smoke job uses ``--quick``)::

    python benchmarks/bench_parallel_scaling.py [--quick]

or under the pytest-benchmark harness with the other benches.  Emits the
text table to ``benchmarks/results/bench_parallel_scaling.txt`` plus a
machine-readable ``bench_parallel_scaling.metrics.json``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from common import BENCH_SCALE, emit, emit_report, format_table, telemetry
from repro.core import SnapsConfig, SnapsResolver
from repro.data.synthetic import make_ios_dataset
from repro.parallel import ParallelConfig, available_cpus

# --quick targets the CI smoke job: big enough that the parallel path is
# exercised end to end (well above ParallelConfig.min_records once the
# explicit worker counts below bypass auto mode), small enough to finish
# in tens of seconds on one core.
QUICK_SCALE = 0.08
WORKER_COUNTS = (0, 1, 2, 4)
BENCH_NAME = "bench_parallel_scaling"


def _clusters(result) -> list[tuple[int, ...]]:
    return sorted(
        tuple(sorted(e.record_ids)) for e in result.entities.entities()
    )


def run_scaling(scale: float) -> dict:
    """One resolve per worker count; returns rows + parity/speedup facts."""
    dataset = make_ios_dataset(scale=scale)
    rows: list[list[object]] = []
    runs: dict[int, dict] = {}
    serial_clusters = None
    serial_s = None
    trace, metrics = telemetry()
    for workers in WORKER_COUNTS:
        instrument = workers == WORKER_COUNTS[-1]
        start = time.perf_counter()
        result = SnapsResolver(SnapsConfig()).resolve(
            dataset,
            trace=trace if instrument else None,
            metrics=metrics if instrument else None,
            parallel=ParallelConfig(workers=workers),
        )
        elapsed = time.perf_counter() - start
        clusters = _clusters(result)
        if workers == 0:
            serial_clusters, serial_s = clusters, elapsed
        identical = clusters == serial_clusters
        speedup = serial_s / elapsed if elapsed > 0 else float("inf")
        runs[workers] = {
            "seconds": round(elapsed, 3),
            "speedup": round(speedup, 3),
            "identical": identical,
        }
        rows.append([
            "serial" if workers == 0 else f"{workers} worker(s)",
            f"{elapsed:.2f}",
            f"{speedup:.2f}x",
            "yes" if identical else "NO",
        ])
    emit(
        BENCH_NAME,
        format_table(
            f"Parallel resolution scaling — {len(dataset)} records, "
            f"{available_cpus()} CPU(s) available",
            ["workers", "seconds", "speedup", "identical to serial"],
            rows,
        ),
    )
    emit_report(
        BENCH_NAME,
        trace,
        metrics,
        meta={
            "records": len(dataset),
            "dataset_scale": scale,
            "available_cpus": available_cpus(),
            "runs": {str(w): facts for w, facts in runs.items()},
        },
    )
    return runs


def _check(runs: dict) -> None:
    assert all(facts["identical"] for facts in runs.values()), (
        "parallel output diverged from serial"
    )
    # The parallel pipeline must not be slower than serial (generous
    # noise margin — absolute speedup depends on scale and CPU count).
    assert runs[1]["seconds"] <= runs[0]["seconds"] * 1.2


def test_parallel_scaling(benchmark):
    runs = benchmark.pedantic(
        lambda: run_scaling(QUICK_SCALE), rounds=1, iterations=1
    )
    _check(runs)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"run at scale {QUICK_SCALE} instead of REPRO_BENCH_SCALE "
             f"(currently {BENCH_SCALE}) — the CI smoke configuration",
    )
    args = parser.parse_args(argv)
    runs = run_scaling(QUICK_SCALE if args.quick else BENCH_SCALE)
    _check(runs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
