"""Benchmark harness configuration.

Run with ``pytest benchmarks/ --benchmark-only`` (the deliverable
command); result tables additionally land in ``benchmarks/results/``.
"""

import sys
from pathlib import Path

# Make the sibling ``common`` module importable when pytest runs from the
# repository root.
sys.path.insert(0, str(Path(__file__).parent))
