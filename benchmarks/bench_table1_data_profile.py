"""Table 1 — missing-value counts and QID value frequencies.

Paper Table 1 profiles first name, surname, address, and occupation of
*deceased people* in IOS, KIL, and the full DS database: names are almost
complete, occupations are mostly missing, and value-frequency
distributions are heavily skewed (min 1, large max).

The DS column is approximated by a larger synthetic sample (the full DS
database is 8.3M entities; we extrapolate shape, not size).
"""

from __future__ import annotations

from common import BENCH_SCALE, emit, format_table, ios_dataset, kil_dataset
from repro.data.synthetic import make_ios_dataset
from repro.eval.profiling import attribute_profile

_ATTRIBUTES = ("first_name", "surname", "address", "occupation")


def _profile_rows(dataset):
    rows = []
    for attribute in _ATTRIBUTES:
        profile = attribute_profile(dataset, attribute)
        rows.append([
            dataset.name,
            attribute,
            profile.missing,
            profile.min_freq,
            round(profile.avg_freq, 1),
            profile.max_freq,
        ])
    return rows


def test_table1_data_profile(benchmark):
    datasets = [
        ios_dataset(),
        kil_dataset(),
        # "DS" stand-in: a larger sample to extrapolate the shape of the
        # full-population column.
        make_ios_dataset(scale=BENCH_SCALE * 2, seed=29),
    ]
    datasets[2].name = "DS-sample"

    def profile_all():
        rows = []
        for dataset in datasets:
            rows.extend(_profile_rows(dataset))
        return rows

    rows = benchmark(profile_all)
    emit(
        "table1",
        format_table(
            "Table 1 — missing values and QID value frequencies (deceased people)",
            ["dataset", "attribute", "missing", "min", "avg", "max"],
            rows,
        ),
    )
    # Shape assertions from the paper: names nearly complete, occupation
    # mostly missing, skewed frequencies.
    by_key = {(r[0], r[1]): r for r in rows}
    for name in ("IOS", "KIL", "DS-sample"):
        assert by_key[(name, "occupation")][2] > by_key[(name, "surname")][2]
        assert by_key[(name, "first_name")][3] == 1  # min frequency 1
        assert by_key[(name, "surname")][5] > by_key[(name, "surname")][4]
