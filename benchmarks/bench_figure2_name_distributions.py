"""Figure 2 — frequency distribution of the 100 most common first names,
surnames, and addresses of deceased people (IOS and KIL).

The paper's figure is a log-scale rank-frequency plot whose key features
are: strong skew (the most common first name and surname each cover >8%
of IOS records) and a long tail.  We print the rank-frequency series
(the plotted data) and check those features.
"""

from __future__ import annotations

from common import emit, format_table, ios_dataset, kil_dataset
from repro.data.roles import Role
from repro.eval.profiling import rank_frequency_series


def test_figure2_name_distributions(benchmark):
    datasets = [ios_dataset(), kil_dataset()]

    def compute_series():
        out = {}
        for dataset in datasets:
            for attribute in ("first_name", "surname", "address"):
                out[(dataset.name, attribute)] = rank_frequency_series(
                    dataset, attribute, roles=(Role.DD,), top_k=100
                )
        return out

    series = benchmark(compute_series)
    rows = []
    for (name, attribute), ranked in sorted(series.items()):
        total = sum(count for _, count in ranked)
        if not ranked:
            continue
        top_value, top_count = ranked[0]
        n_deceased = len(datasets[0 if name == "IOS" else 1].records_with_role([Role.DD]))
        rows.append([
            name,
            attribute,
            len(ranked),
            f"{top_value} ({top_count})",
            f"{100.0 * top_count / max(1, n_deceased):.1f}%",
            ranked[min(9, len(ranked) - 1)][1],
            ranked[-1][1],
        ])
    emit(
        "figure2",
        format_table(
            "Figure 2 — rank-frequency of the 100 most common values (deceased)",
            ["dataset", "attribute", "distinct(≤100)", "rank-1 value",
             "rank-1 share", "rank-10 freq", "rank-100 freq"],
            rows,
        ),
    )
    # Shape: distributions are skewed — rank-1 far above rank-10 and the
    # top first name covers a large share, as in the paper's ~8%.
    for (name, attribute), ranked in series.items():
        if len(ranked) >= 10 and attribute in ("first_name", "surname"):
            assert ranked[0][1] >= 2 * ranked[9][1] or ranked[0][1] < 10
