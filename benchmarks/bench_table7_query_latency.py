"""Table 7 — query and pedigree-extraction latency.

Paper Table 7 reports min/avg/median/max seconds for query processing and
for pedigree extraction; both complete "well under two seconds" with the
manual alternative taking days.  We issue a workload of exact and
misspelled queries sampled from the indexed population and extract a
2-generation pedigree for each top hit.
"""

from __future__ import annotations

import statistics
import time

from common import emit, emit_report, format_table, ios_dataset
from repro.core import SnapsConfig, SnapsResolver
from repro.obs import MetricsRegistry
from repro.pedigree import build_pedigree_graph, extract_pedigree
from repro.query import Query, QueryEngine
from repro.utils.rng import make_rng


def _build_engine(metrics):
    dataset = ios_dataset()
    result = SnapsResolver(SnapsConfig()).resolve(dataset)
    graph = build_pedigree_graph(dataset, result.entities)
    return graph, QueryEngine(graph, metrics=metrics)


def _workload(graph, n=100, seed=23):
    rng = make_rng(seed)
    named = [
        e for e in graph if e.first("first_name") and e.first("surname")
    ]
    queries = []
    for _ in range(n):
        entity = rng.choice(named)
        first = entity.first("first_name")
        surname = entity.first("surname")
        if rng.random() < 0.4 and len(surname) > 4:
            # Simulate user misspelling: drop one character.
            pos = rng.randrange(1, len(surname))
            surname = surname[:pos] + surname[pos + 1 :]
        queries.append(Query(first_name=first, surname=surname))
    return queries


def test_table7_query_latency(benchmark):
    metrics = MetricsRegistry()
    graph, engine = _build_engine(metrics)
    queries = _workload(graph)

    def run_workload():
        query_times = []
        extract_times = []
        for query in queries:
            start = time.perf_counter()
            hits = engine.search(query, top_m=10)
            query_times.append(time.perf_counter() - start)
            if hits:
                start = time.perf_counter()
                extract_pedigree(graph, hits[0].entity.entity_id, generations=2)
                extract_times.append(time.perf_counter() - start)
        return query_times, extract_times

    query_times, extract_times = benchmark.pedantic(
        run_workload, rounds=1, iterations=1
    )

    def stats_row(label, values):
        return [
            label,
            f"{min(values):.4f}",
            f"{statistics.mean(values):.4f}",
            f"{statistics.median(values):.4f}",
            f"{max(values):.4f}",
        ]

    emit(
        "table7",
        format_table(
            f"Table 7 — online latency in seconds ({len(queries)} queries, "
            f"{len(graph)} entities)",
            ["task", "min", "avg", "median", "max"],
            [
                stats_row("Querying", query_times),
                stats_row("Pedigree extraction", extract_times),
            ],
        ),
    )
    emit_report(
        "table7", metrics=metrics,
        meta={"queries": len(queries), "entities": len(graph)},
    )
    # Shape: both tasks complete well under the paper's 2-second bound
    # (our graphs are smaller; the bound must hold with huge headroom).
    assert max(query_times) < 2.0
    assert max(extract_times) < 2.0
    assert extract_times, "some queries must produce hits"
    # The engine-side latency histogram saw every query.
    assert metrics.histograms["query.latency_seconds"].count == len(queries)
