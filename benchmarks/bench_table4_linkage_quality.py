"""Table 4 — linkage quality: SNAPS vs the four baselines.

Paper Table 4 reports P/R/F* on IOS and KIL for the role pairs Bp-Bp and
Bp-Dp; the supervised ("Magellan") column is the mean ± standard
deviation over four classifiers × two training regimes.

Headline shapes to hold: SNAPS has the best F* in every row; Attr-Sim
keeps recall but loses precision badly; Dep-Graph and Rel-Cluster sit in
between; the supervised baseline has a large spread across its settings.
"""

from __future__ import annotations

import statistics

from common import emit, format_table, ios_dataset, kil_dataset
from repro.baselines import (
    AttrSimLinker,
    DepGraphLinker,
    FellegiSunterLinker,
    RelClusterLinker,
    SupervisedLinker,
)
from repro.core import SnapsConfig, SnapsResolver
from repro.eval import evaluate_linkage

_ROLE_PAIRS = ("Bp-Bp", "Bp-Dp")


def _evaluate_dataset(dataset):
    truth = {rp: dataset.true_match_pairs(rp) for rp in _ROLE_PAIRS}
    rows = []
    scores = {}

    systems = [
        ("SNAPS", lambda: SnapsResolver(SnapsConfig()).resolve(dataset)),
        ("Attr-Sim", lambda: AttrSimLinker().link(dataset)),
        ("Fellegi-Sunter", lambda: FellegiSunterLinker().link(dataset)),
        ("Dep-Graph", lambda: DepGraphLinker().link(dataset)),
        ("Rel-Cluster", lambda: RelClusterLinker().link(dataset)),
    ]
    for name, run in systems:
        result = run()
        for role_pair in _ROLE_PAIRS:
            ev = evaluate_linkage(result.matched_pairs(role_pair), truth[role_pair])
            rows.append([
                dataset.name, role_pair, name,
                f"{ev.precision:.2f}", f"{ev.recall:.2f}", f"{ev.f_star:.2f}",
            ])
            scores[(dataset.name, role_pair, name)] = ev
    # Supervised baseline: 4 classifiers × 2 regimes, averaged ± std.
    for role_pair in _ROLE_PAIRS:
        outcomes = SupervisedLinker(seed=7).run(dataset, role_pair)
        evs = [
            evaluate_linkage(o.predicted_pairs, truth[role_pair]) for o in outcomes
        ]
        mean_f = statistics.mean(e.f_star for e in evs)
        std_f = statistics.pstdev(e.f_star for e in evs)
        rows.append([
            dataset.name, role_pair, "Magellan-style",
            f"{statistics.mean(e.precision for e in evs):.1f}"
            f"±{statistics.pstdev(e.precision for e in evs):.1f}",
            f"{statistics.mean(e.recall for e in evs):.1f}"
            f"±{statistics.pstdev(e.recall for e in evs):.1f}",
            f"{mean_f:.1f}±{std_f:.1f}",
        ])
        scores[(dataset.name, role_pair, "Magellan-style")] = (mean_f, std_f)
    return rows, scores


def test_table4_linkage_quality(benchmark):
    def run():
        rows_ios, scores_ios = _evaluate_dataset(ios_dataset())
        rows_kil, scores_kil = _evaluate_dataset(kil_dataset())
        return rows_ios + rows_kil, {**scores_ios, **scores_kil}

    rows, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4",
        format_table(
            "Table 4 — P/R/F* of SNAPS vs baselines",
            ["dataset", "role pair", "system", "P", "R", "F*"],
            rows,
        ),
    )
    # Shape 1: SNAPS has the best F* of the unsupervised systems in every
    # dataset × role-pair cell, and beats the supervised mean.
    for dataset_name in ("IOS", "KIL"):
        for role_pair in _ROLE_PAIRS:
            snaps = scores[(dataset_name, role_pair, "SNAPS")].f_star
            for rival in ("Attr-Sim", "Fellegi-Sunter", "Dep-Graph", "Rel-Cluster"):
                assert snaps >= scores[(dataset_name, role_pair, rival)].f_star - 1.0, (
                    f"{rival} beat SNAPS on {dataset_name}/{role_pair}"
                )
            supervised_mean, _ = scores[(dataset_name, role_pair, "Magellan-style")]
            assert snaps >= supervised_mean - 5.0
    # Shape 2: Attr-Sim keeps recall but loses precision vs SNAPS.
    for dataset_name in ("IOS", "KIL"):
        snaps = scores[(dataset_name, "Bp-Bp", "SNAPS")]
        attr = scores[(dataset_name, "Bp-Bp", "Attr-Sim")]
        assert attr.precision < snaps.precision
        assert attr.recall > snaps.recall - 15.0
